(* The `ocd` command-line interface.

   Subcommands:
     ocd run        — run heuristics/baselines on a generated workload
     ocd figure     — regenerate one of the paper's figures
     ocd exact      — solve a small instance exactly (search and/or IP)
     ocd reduce     — the Dominating Set -> FOCD reduction demo
     ocd bounds     — print the §5.1 lower bounds for a workload
     ocd experiment — run an extension experiment
     ocd export     — dump a workload/schedule in the text codec
     ocd trace      — render a run's progress timeline
     ocd async      — run the asynchronous message-passing protocols
     ocd chaos      — crash-recovery robustness campaign for the async
                      protocols
     ocd dht        — run dht-rarest (Chord-style provider discovery)
                      against the omniscient async-local baseline
     ocd profile    — run a workload under the wall-clock/allocation
                      probe and print the per-phase table

   run, async and chaos also accept --trace-out FILE (Chrome
   trace-event JSON for Perfetto) and --metrics-out FILE (the
   deterministic metrics registry, byte-identical across --jobs). *)

open Cmdliner
open Ocd_core
open Ocd_prelude

(* ---------------------- shared arguments -------------------------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let n_arg =
  Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc:"Vertex count.")

let tokens_arg =
  Arg.(value & opt int 50 & info [ "tokens" ] ~docv:"M" ~doc:"Token count.")

let topology_arg =
  let parse s =
    match Ocd_topology.Topology.kind_of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown topology %S" s))
  in
  let print ppf k =
    Format.pp_print_string ppf (Ocd_topology.Topology.kind_name k)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Ocd_topology.Topology.Random
    & info [ "topology" ] ~docv:"KIND"
        ~doc:"Topology kind: random, transit-stub or waxman.")

let threshold_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "threshold" ] ~docv:"T"
        ~doc:"Receiver-density threshold in [0,1] (1 = all receivers).")

let files_arg =
  Arg.(
    value
    & opt int 1
    & info [ "files" ] ~docv:"K" ~doc:"Number of files (must divide tokens).")

let multi_sender_arg =
  Arg.(
    value & flag
    & info [ "multi-sender" ] ~doc:"Seed each file at a random vertex.")

let full_arg =
  Arg.(
    value & flag
    & info [ "full" ] ~doc:"Use the paper's full sweep parameters.")

let jobs_arg =
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg "expected a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt positive_int (Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the sweep (default: OCD_BENCH_JOBS or the \
           recommended domain count).  Output is byte-identical for any \
           value.")

(* ---------------------- observability plumbing -------------------- *)

let ( let* ) = Result.bind

(* Every file the CLI writes goes through this, so a bad path surfaces
   as a cmdliner `Msg error (exit 124 with the usage line) instead of a
   Sys_error backtrace. *)
let open_out_result path =
  try Ok (open_out path) with Sys_error msg -> Error (`Msg msg)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's event stream to $(docv) as Chrome trace-event \
           JSON (open in Perfetto or chrome://tracing).  Timestamps are \
           simulator/engine time, so the file is byte-identical across \
           $(b,--jobs) values.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the deterministic metrics registry (counters, gauges, \
           histograms; sorted keys) to $(docv) as text.")

(* Opens both output files up front — an unwritable path fails before
   the workload runs, not after — then hands the body a live scope
   whose memory sink and registry are flushed to the files at the end.
   With neither flag the body gets the disabled scope and pays only
   its [if obs.on] guards. *)
let with_observed ~trace_out ~metrics_out body =
  match (trace_out, metrics_out) with
  | None, None ->
    body Ocd_obs.disabled;
    Ok ()
  | _ ->
    let* trace_oc =
      match trace_out with
      | None -> Ok None
      | Some path -> Result.map Option.some (open_out_result path)
    in
    let* metrics_oc =
      match metrics_out with
      | None -> Ok None
      | Some path -> (
        match open_out_result path with
        | Ok oc -> Ok (Some oc)
        | Error e ->
          Option.iter close_out trace_oc;
          Error e)
    in
    let sink =
      if trace_oc <> None then Ocd_obs.Sink.memory () else Ocd_obs.Sink.null
    in
    let obs = Ocd_obs.create ~sink () in
    body obs;
    Option.iter
      (fun oc ->
        let jsonl = Ocd_obs.Sink.jsonl oc in
        List.iter (Ocd_obs.Sink.emit jsonl) (Ocd_obs.Sink.events sink);
        Ocd_obs.Sink.close jsonl;
        close_out oc)
      trace_oc;
    Option.iter
      (fun oc ->
        output_string oc (Ocd_obs.Metrics.render obs.Ocd_obs.metrics);
        close_out oc)
      metrics_oc;
    Ok ()

(* ---------------------- workload building ------------------------- *)

let build_instance ~seed ~topology ~n ~tokens ~threshold ~files ~multi_sender =
  let rng = Prng.create ~seed in
  let graph = Ocd_topology.Topology.generate rng topology ~n () in
  let scenario =
    if files > 1 || multi_sender then
      Scenario.subdivide_files rng ~graph ~total_tokens:tokens ~files
        ~multi_sender ()
    else if threshold < 1.0 then
      Scenario.receiver_density rng ~graph ~tokens ~threshold ()
    else Scenario.single_file rng ~graph ~tokens ()
  in
  scenario.Scenario.instance

(* ---------------------- ocd run ----------------------------------- *)

let all_strategies () =
  Ocd_heuristics.Registry.all
  @ [
      Ocd_heuristics.Flow_step.strategy;
      Ocd_baselines.Tree_push.strategy ();
      Ocd_baselines.Split_forest.strategy ~k:4 ();
      Ocd_baselines.Fast_replica.strategy ();
      Ocd_baselines.Serial_steiner.strategy;
    ]

let strategy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "strategy" ] ~docv:"NAME"
        ~doc:
          "Strategy to run (default: all).  Heuristics: round-robin, random, \
           local, bandwidth, global.  Baselines: tree-push, split-forest-4, \
           fast-replica, serial-steiner.")

let run_cmd =
  let run seed topology n tokens threshold files multi_sender strategy
      trace_out metrics_out =
    let inst =
      build_instance ~seed ~topology ~n ~tokens ~threshold ~files ~multi_sender
    in
    Printf.printf "instance: n=%d m=%d deficit=%d (bw_lb=%d, moves_lb=%s)\n\n"
      (Instance.vertex_count inst)
      inst.Instance.token_count (Instance.total_deficit inst)
      (Bounds.bandwidth_lower_bound inst)
      (if Instance.satisfiable inst then
         string_of_int (Bounds.makespan_lower_bound inst)
       else "n/a (unsatisfiable)");
    let chosen =
      match strategy with
      | None -> all_strategies ()
      | Some name -> (
        match
          List.find_opt
            (fun s -> s.Ocd_engine.Strategy.name = name)
            (all_strategies ())
        with
        | Some s -> [ s ]
        | None ->
          Printf.eprintf "unknown strategy %S\n" name;
          exit 2)
    in
    with_observed ~trace_out ~metrics_out (fun obs ->
        Printf.printf "%-16s %10s %10s %10s %12s\n" "strategy" "makespan"
          "bandwidth" "pruned" "mean-finish";
        List.iteri
          (fun i strategy ->
            (* Per-strategy child scope: counters and trace events merge
               back under a "<strategy>/" prefix with pid = strategy
               index, so runs over several strategies stay separable in
               the output files. *)
            let sobs = Ocd_obs.child obs in
            let run =
              Ocd_engine.Engine.run ~obs:sobs ~strategy ~seed:(seed + 1) inst
            in
            Ocd_obs.absorb ~into:obs ~pid:i
              ~prefix:(strategy.Ocd_engine.Strategy.name ^ "/")
              sobs;
            match run.Ocd_engine.Engine.outcome with
            | Ocd_engine.Engine.Completed ->
              let m = run.Ocd_engine.Engine.metrics in
              Printf.printf "%-16s %10d %10d %10d %12.1f\n"
                run.Ocd_engine.Engine.strategy_name m.Metrics.makespan
                m.Metrics.bandwidth m.Metrics.pruned_bandwidth
                (Metrics.mean_completion m)
            | Ocd_engine.Engine.Stalled step ->
              Printf.printf "%-16s stalled at step %d\n"
                run.Ocd_engine.Engine.strategy_name step
            | Ocd_engine.Engine.Step_limit ->
              Printf.printf "%-16s hit the step limit\n"
                run.Ocd_engine.Engine.strategy_name)
          chosen)
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ topology_arg $ n_arg $ tokens_arg
       $ threshold_arg $ files_arg $ multi_sender_arg $ strategy_arg
       $ trace_out_arg $ metrics_out_arg))
  in
  Cmd.v (Cmd.info "run" ~doc:"Run heuristics/baselines on a generated workload")
    term

(* ---------------------- ocd figure -------------------------------- *)

let figure_cmd =
  let run figure full jobs =
    match figure with
    | 1 -> Ocd_bench.Experiments.figure1 ()
    | 2 -> Ocd_bench.Experiments.figure2 ~full ~jobs ()
    | 3 -> Ocd_bench.Experiments.figure3 ~full ~jobs ()
    | 4 -> Ocd_bench.Experiments.figure4 ~full ~jobs ()
    | 5 -> Ocd_bench.Experiments.figure5 ~full ~jobs ()
    | 6 -> Ocd_bench.Experiments.figure6 ~full ~jobs ()
    | 7 -> Ocd_bench.Experiments.figure7 ()
    | n ->
      Printf.eprintf "no figure %d (the paper has figures 1-7)\n" n;
      exit 2
  in
  let figure =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"FIGURE" ~doc:"Figure number (1-7).")
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's figures")
    Term.(const run $ figure $ full_arg $ jobs_arg)

(* ---------------------- ocd exact --------------------------------- *)

let exact_cmd =
  let run seed n tokens horizon use_ip =
    let inst =
      if n = 0 then Figure1.instance ()
      else
        build_instance ~seed ~topology:Ocd_topology.Topology.Random ~n ~tokens
          ~threshold:1.0 ~files:1 ~multi_sender:false
    in
    Printf.printf "instance: n=%d m=%d\n" (Instance.vertex_count inst)
      inst.Instance.token_count;
    (match Ocd_exact.Search.focd inst with
    | Ocd_exact.Search.Solved s ->
      Printf.printf "search FOCD: %d steps (witness: %d moves)\n"
        s.Ocd_exact.Search.objective
        (Schedule.move_count s.Ocd_exact.Search.schedule)
    | Ocd_exact.Search.Unsatisfiable -> print_endline "search FOCD: unsatisfiable"
    | Ocd_exact.Search.Budget_exceeded -> print_endline "search FOCD: budget");
    (match Ocd_exact.Search.eocd ?horizon inst with
    | Ocd_exact.Search.Solved s ->
      Printf.printf "search EOCD%s: %d moves (witness: %d steps)\n"
        (match horizon with
        | Some h -> Printf.sprintf "@%d" h
        | None -> "")
        s.Ocd_exact.Search.objective
        (Schedule.length s.Ocd_exact.Search.schedule)
    | Ocd_exact.Search.Unsatisfiable -> print_endline "search EOCD: unsatisfiable"
    | Ocd_exact.Search.Budget_exceeded -> print_endline "search EOCD: budget");
    if use_ip then begin
      match Ocd_exact.Ip_formulation.focd inst with
      | Some (tau, schedule) ->
        Printf.printf "IP FOCD: %d steps (witness: %d moves, %d variables)\n"
          tau
          (Schedule.move_count schedule)
          (Ocd_exact.Ip_formulation.variable_count inst ~horizon:tau)
      | None -> print_endline "IP FOCD: no solution within budget/horizon"
    end
  in
  let n_arg =
    Arg.(
      value & opt int 0
      & info [ "n" ] ~docv:"N"
          ~doc:"Vertex count for a random instance (0 = the Figure 1 instance).")
  in
  let tokens_arg =
    Arg.(value & opt int 2 & info [ "tokens" ] ~docv:"M" ~doc:"Token count.")
  in
  let horizon =
    Arg.(
      value
      & opt (some int) None
      & info [ "horizon" ] ~docv:"H" ~doc:"EOCD timestep budget.")
  in
  let use_ip =
    Arg.(value & flag & info [ "ip" ] ~doc:"Also solve the §3.4 integer program.")
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Solve a small instance exactly")
    Term.(const run $ seed_arg $ n_arg $ tokens_arg $ horizon $ use_ip)

(* ---------------------- ocd reduce --------------------------------- *)

let reduce_cmd =
  let run seed n k p =
    let rng = Prng.create ~seed in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Prng.bernoulli rng p then edges := (u, v, 1) :: !edges
      done
    done;
    let g = Ocd_graph.Digraph.of_edges ~vertex_count:n !edges in
    Printf.printf "graph: n=%d, %d undirected edges\n" n (List.length !edges);
    let dom = Ocd_graph.Dominating.minimum g in
    Printf.printf "minimum dominating set: {%s} (size %d)\n"
      (String.concat ", " (List.map string_of_int dom))
      (List.length dom);
    let inst = Ocd_exact.Reduction.instance g ~k in
    Printf.printf
      "reduced FOCD instance: %d vertices, %d tokens; 2-step solvable with k=%d: %b\n"
      (Instance.vertex_count inst)
      inst.Instance.token_count k
      (Ocd_exact.Reduction.two_step_solvable g ~k);
    if List.length dom <= k then begin
      let s = Ocd_exact.Reduction.schedule_of_dominating_set g ~k ~dominating:dom in
      match Validate.check_successful inst s with
      | Ok () ->
        Printf.printf "constructive schedule: %d steps, %d moves — valid\n"
          (Schedule.length s) (Schedule.move_count s)
      | Error e -> Format.printf "constructive schedule INVALID: %a@." Validate.pp_error e
    end
  in
  let n = Arg.(value & opt int 6 & info [ "n" ] ~docv:"N" ~doc:"Vertices.") in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Budget.") in
  let p =
    Arg.(value & opt float 0.4 & info [ "p" ] ~docv:"P" ~doc:"Edge probability.")
  in
  Cmd.v
    (Cmd.info "reduce" ~doc:"Dominating Set -> FOCD reduction demo")
    Term.(const run $ seed_arg $ n $ k $ p)

(* ---------------------- ocd bounds --------------------------------- *)

let bounds_cmd =
  let run seed topology n tokens threshold =
    let inst =
      build_instance ~seed ~topology ~n ~tokens ~threshold ~files:1
        ~multi_sender:false
    in
    Printf.printf "deficit (bandwidth lower bound): %d\n"
      (Bounds.bandwidth_lower_bound inst);
    if Instance.satisfiable inst then begin
      Printf.printf "makespan lower bound (M_i(v)):   %d\n"
        (Bounds.makespan_lower_bound inst);
      Printf.printf "one-step completion possible:    %b\n"
        (Bounds.one_step_feasible inst ~have:inst.Instance.have);
      Printf.printf "serial-Steiner bandwidth (upper): %d\n"
        (Ocd_baselines.Serial_steiner.bandwidth_upper_bound inst)
    end
    else print_endline "instance is unsatisfiable"
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the §5.1 lower bounds for a workload")
    Term.(const run $ seed_arg $ topology_arg $ n_arg $ tokens_arg $ threshold_arg)

(* ---------------------- ocd experiment ----------------------------- *)

let experiment_cmd =
  let experiments =
    [
      ( "adversary",
        fun ~jobs:_ ~full:_ ~n:_ () -> Ocd_bench.Experiments.adversary () );
      ( "ip-vs-search",
        fun ~jobs:_ ~full:_ ~n:_ () -> Ocd_bench.Experiments.ip_vs_search () );
      ( "optimality-gap",
        fun ~jobs:_ ~full:_ ~n:_ () -> Ocd_bench.Experiments.optimality_gap () );
      ( "baselines",
        fun ~jobs ~full:_ ~n:_ () -> Ocd_bench.Experiments.baselines ~jobs () );
      ( "ablation",
        fun ~jobs ~full:_ ~n:_ () ->
          Ocd_bench.Experiments.ablation_subdivision ~jobs () );
      ( "staleness",
        fun ~jobs ~full:_ ~n:_ () ->
          Ocd_bench.Experiments.ablation_staleness ~jobs () );
      ( "dynamics",
        fun ~jobs:_ ~full:_ ~n:_ () -> Ocd_bench.Experiments.dynamics () );
      ( "async-overhead",
        fun ~jobs ~full:_ ~n:_ () ->
          Ocd_bench.Experiments.async_overhead ~jobs () );
      ( "dht-lookup",
        fun ~jobs ~full:_ ~n:_ () -> Ocd_bench.Experiments.dht_lookup ~jobs () );
      ( "partition-heal",
        fun ~jobs ~full:_ ~n:_ () ->
          Ocd_bench.Experiments.partition_heal ~jobs () );
      ( "explain",
        fun ~jobs ~full:_ ~n:_ () ->
          Ocd_bench.Experiments.explain_attribution ~jobs () );
      ("coding", fun ~jobs:_ ~full:_ ~n:_ () -> Ocd_bench.Experiments.coding ());
      ( "underlay",
        fun ~jobs:_ ~full:_ ~n:_ () -> Ocd_bench.Experiments.underlay () );
      ( "timeline-perf",
        fun ~jobs:_ ~full:_ ~n:_ () -> Ocd_bench.Experiments.timeline_perf () );
      ( "graph-scale",
        fun ~jobs:_ ~full ~n:_ () -> Ocd_bench.Experiments.graph_scale ~full () );
      ( "engine-scale",
        fun ~jobs:_ ~full:_ ~n () -> Ocd_bench.Experiments.engine_scale ?n () );
    ]
  in
  let run name full jobs n =
    match List.assoc_opt name experiments with
    | Some f -> f ~jobs ~full ~n ()
    | None ->
      Printf.eprintf "unknown experiment %S; available: %s\n" name
        (String.concat ", " (List.map fst experiments));
      exit 2
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "Experiment: adversary, ip-vs-search, baselines, ablation, \
             dynamics, async-overhead, dht-lookup, explain, coding, \
             underlay, timeline-perf, graph-scale or engine-scale.")
  in
  let n_override_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n" ] ~docv:"N"
          ~doc:
            "Restrict a scale experiment to a single vertex count \
             (engine-scale only).")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one of the extension experiments")
    Term.(const run $ name_arg $ full_arg $ jobs_arg $ n_override_arg)

(* ---------------------- ocd export --------------------------------- *)

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write to $(docv) instead of stdout.")

(* Emit [text] to stdout or to [-o FILE]; a bad path is a cmdliner
   error, not a backtrace. *)
let emit ~output text =
  match output with
  | None ->
    print_string text;
    Ok ()
  | Some path ->
    let* oc = open_out_result path in
    output_string oc text;
    close_out oc;
    Ok ()

let export_cmd =
  let run seed topology n tokens threshold strategy_name output =
    let inst =
      build_instance ~seed ~topology ~n ~tokens ~threshold ~files:1
        ~multi_sender:false
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (Codec.instance_to_string inst);
    (match strategy_name with
    | None -> ()
    | Some name -> (
      match
        List.find_opt
          (fun s -> s.Ocd_engine.Strategy.name = name)
          (all_strategies ())
      with
      | None ->
        Printf.eprintf "unknown strategy %S\n" name;
        exit 2
      | Some strategy ->
        let run =
          Ocd_engine.Engine.completed_exn
            (Ocd_engine.Engine.run ~strategy ~seed:(seed + 1) inst)
        in
        Buffer.add_string buf
          (Codec.schedule_to_string run.Ocd_engine.Engine.schedule)));
    emit ~output (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Dump a generated workload (and optionally a strategy's schedule) \
          in the text codec format")
    Term.(
      term_result
        (const run $ seed_arg $ topology_arg $ n_arg $ tokens_arg
       $ threshold_arg $ strategy_arg $ output_arg))

(* ---------------------- ocd async ---------------------------------- *)

let async_cmd =
  let run seed topology n tokens threshold protocol_name profile_name loss
      pace condition_name monitor_on jobs trace_out metrics_out =
    let inst =
      build_instance ~seed ~topology ~n ~tokens ~threshold ~files:1
        ~multi_sender:false
    in
    let base_profile =
      match profile_name with
      | "default" -> Ocd_async.Net.default
      | "lockstep" -> Ocd_async.Net.lockstep
      | other ->
        Printf.eprintf "unknown profile %S (default, lockstep)\n" other;
        exit 2
    in
    let profile =
      {
        base_profile with
        Ocd_async.Net.loss =
          (match loss with Some l -> l | None -> base_profile.Ocd_async.Net.loss);
        pace =
          (match pace with Some p -> p | None -> base_profile.Ocd_async.Net.pace);
      }
    in
    let condition =
      match condition_name with
      | "static" -> Ocd_dynamics.Condition.static
      | "cross-traffic" ->
        Ocd_dynamics.Condition.cross_traffic ~seed:(seed + 7) ~prob:0.4
          ~severity:0.5
      | "link-flaps" ->
        Ocd_dynamics.Condition.link_flaps ~seed:(seed + 7) ~down_prob:0.1
          ~up_prob:0.5
      | "churn" ->
        Ocd_dynamics.Condition.churn ~seed:(seed + 7) ~protected:[ 0 ]
          ~leave_prob:0.05 ~return_prob:0.5
      | other ->
        Printf.eprintf
          "unknown condition %S (static, cross-traffic, link-flaps, churn)\n"
          other;
        exit 2
    in
    let chosen =
      match protocol_name with
      | None -> Ocd_dht.Registry.names
      | Some name ->
        if List.mem name Ocd_dht.Registry.names then [ name ]
        else begin
          Printf.eprintf "%s\n"
            (Ocd_async.Registry.unknown ~available:Ocd_dht.Registry.names name);
          exit 2
        end
    in
    Printf.printf "instance: n=%d m=%d deficit=%d; profile=%s pace=%d loss=%.2f condition=%s\n\n"
      (Instance.vertex_count inst)
      inst.Instance.token_count (Instance.total_deficit inst) profile_name
      profile.Ocd_async.Net.pace profile.Ocd_async.Net.loss condition_name;
    with_observed ~trace_out ~metrics_out (fun obs ->
        let runs =
          Pool.map ~obs ~jobs
            (fun name ->
              let protocol = Ocd_dht.Registry.find_exn name in
              (* Child scope per protocol: its registry and memory sink
                 are private to this worker, then absorbed in protocol
                 order below — so the files are byte-identical for any
                 --jobs. *)
              let pobs = Ocd_obs.child obs in
              let monitor =
                if monitor_on then Ocd_async.Monitor.create ()
                else Ocd_async.Monitor.disabled
              in
              let r =
                Ocd_async.Runtime.run ~obs:pobs ~profile ~condition ~monitor
                  ~protocol ~seed inst
              in
              (r, monitor, pobs))
            chosen
        in
        if obs.Ocd_obs.on then
          List.iteri
            (fun i (name, (_, _, pobs)) ->
              Ocd_obs.absorb ~into:obs ~pid:i ~prefix:(name ^ "/") pobs)
            (List.combine chosen runs);
        Printf.printf "%-12s %8s %8s %10s %9s %8s %8s %8s %8s\n" "protocol"
          "rounds" "ticks" "makespan" "data" "control" "retrans" "dropped"
          "goodput";
        List.iter
          (fun ((r : Ocd_async.Runtime.run), _, _) ->
            Printf.printf "%-12s %8s %8s %10s %9d %8d %8d %8d %8.3f\n"
              r.Ocd_async.Runtime.protocol_name
              (match r.Ocd_async.Runtime.outcome with
              | Ocd_async.Runtime.Completed ->
                string_of_int r.Ocd_async.Runtime.rounds
              | Ocd_async.Runtime.Timed_out -> "timeout")
              (match r.Ocd_async.Runtime.completion_ticks with
              | Some t -> string_of_int t
              | None -> "-")
              (Metrics.makespan_cell r.Ocd_async.Runtime.metrics)
              r.Ocd_async.Runtime.data_messages
              r.Ocd_async.Runtime.control_messages
              r.Ocd_async.Runtime.retransmissions
              r.Ocd_async.Runtime.dropped_messages r.Ocd_async.Runtime.goodput)
          runs;
        if monitor_on then
          List.iter
            (fun ((r : Ocd_async.Runtime.run), monitor, _) ->
              Printf.printf "\nmonitor %s: %s\n"
                r.Ocd_async.Runtime.protocol_name
                (if Ocd_async.Monitor.ok monitor then "ok"
                 else
                   Printf.sprintf "%d violation(s)"
                     (Ocd_async.Monitor.count monitor));
              List.iter
                (fun (v : Ocd_async.Monitor.violation) ->
                  Printf.printf "  [tick %d, node %d] %s: %s\n"
                    v.Ocd_async.Monitor.tick v.Ocd_async.Monitor.node
                    v.Ocd_async.Monitor.rule v.Ocd_async.Monitor.detail)
                (Ocd_async.Monitor.violations monitor))
            runs)
  in
  let protocol_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol" ] ~docv:"NAME"
          ~doc:
            "Protocol to run (default: all).  Available: async-local, \
             async-push, flood-plan, dht-rarest.")
  in
  let profile_arg =
    Arg.(
      value & opt string "default"
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:
            "Network profile: default (latency, jitter, pacing) or lockstep \
             (the synchronous-equivalent degenerate profile).")
  in
  let loss_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "loss" ] ~docv:"P" ~doc:"Override per-message loss probability.")
  in
  let pace_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "pace" ] ~docv:"TICKS" ~doc:"Override ticks per round.")
  in
  let condition_arg =
    Arg.(
      value & opt string "static"
      & info [ "condition" ] ~docv:"KIND"
          ~doc:
            "Fault injector: static, cross-traffic, link-flaps or churn \
             (seeded from --seed).")
  in
  let monitor_arg =
    Arg.(
      value & flag
      & info [ "monitor" ]
          ~doc:
            "Enable the runtime invariant monitor (phantom arcs, possession \
             durability, false suspicion, DHT ring safety) and print its \
             violation report per protocol.")
  in
  Cmd.v
    (Cmd.info "async"
       ~doc:
         "Run the asynchronous message-passing protocols (discrete-event \
          simulation with latency, loss and retry)")
    Term.(
      term_result
        (const run $ seed_arg $ topology_arg $ n_arg $ tokens_arg
       $ threshold_arg $ protocol_arg $ profile_arg $ loss_arg $ pace_arg
       $ condition_arg $ monitor_arg $ jobs_arg $ trace_out_arg
       $ metrics_out_arg))

(* ---------------------- ocd chaos ---------------------------------- *)

let chaos_cmd =
  let run seed grid_name n tokens trials shrink shrink_out jobs trace_out
      metrics_out =
    let base =
      match grid_name with
      | "smoke" -> Ocd_bench.Chaos.smoke_grid
      | "default" -> Ocd_bench.Chaos.default_grid
      | "failing" -> Ocd_bench.Chaos.failing_grid
      | other ->
        Printf.eprintf "unknown grid %S (expected smoke, default or failing)\n"
          other;
        exit 2
    in
    let grid =
      {
        base with
        Ocd_bench.Chaos.n = (match n with Some n -> n | None -> base.Ocd_bench.Chaos.n);
        tokens = (match tokens with Some m -> m | None -> base.Ocd_bench.Chaos.tokens);
        trials = (match trials with Some t -> t | None -> base.Ocd_bench.Chaos.trials);
      }
    in
    with_observed ~trace_out ~metrics_out (fun obs ->
        Ocd_bench.Chaos.report ~obs ~jobs ~seed grid;
        if shrink then begin
      let fails = Ocd_bench.Chaos.failures ~jobs ~seed grid in
      Printf.printf "\nshrink: %d failing trial(s)\n" (List.length fails);
      match fails with
      | [] -> ()
      | (case, tag) :: _ -> (
        Printf.printf "shrinking first failure: %s (%s)\n"
          case.Ocd_bench.Shrink.protocol tag;
        match Ocd_bench.Shrink.shrink case with
        | Error e ->
          Printf.eprintf "shrink failed: %s\n" e;
          exit 1
        | Ok s ->
          Printf.printf
            "minimal reproducer: %d crash span(s) + %d partition window(s) \
             (from %d + %d), %d replays\n"
            (List.length s.Ocd_bench.Shrink.minimal.Ocd_bench.Shrink.downtime)
            (List.length s.Ocd_bench.Shrink.minimal.Ocd_bench.Shrink.windows)
            (List.length case.Ocd_bench.Shrink.downtime)
            (List.length case.Ocd_bench.Shrink.windows)
            s.Ocd_bench.Shrink.tests;
          let artifact =
            Ocd_bench.Shrink.to_string s.Ocd_bench.Shrink.minimal
          in
          (match shrink_out with
          | None -> print_string artifact
          | Some path ->
            let oc = open_out path in
            output_string oc artifact;
            close_out oc;
            Printf.printf "wrote %s\n" path))
        end)
  in
  let grid_arg =
    Arg.(
      value & opt string "default"
      & info [ "grid" ] ~docv:"GRID"
          ~doc:
            "Campaign grid: smoke (tiny, for CI), default, or failing (a \
             known-failing partition cell for exercising --shrink).")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "After the campaign, replay each trial as an explicit fault \
             schedule, delta-debug the first failure down to a minimal \
             crash-span/partition-window set that still fails the same way, \
             and emit it as a replayable reproducer.")
  in
  let shrink_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "shrink-out" ] ~docv:"FILE"
          ~doc:"Write the shrunk reproducer artifact to $(docv) (default: stdout).")
  in
  let n_override =
    Arg.(
      value
      & opt (some int) None
      & info [ "n" ] ~docv:"N" ~doc:"Override the grid's vertex count.")
  in
  let tokens_override =
    Arg.(
      value
      & opt (some int) None
      & info [ "tokens" ] ~docv:"M" ~doc:"Override the grid's token count.")
  in
  let trials_override =
    Arg.(
      value
      & opt (some int) None
      & info [ "trials" ] ~docv:"T" ~doc:"Override trials per grid cell.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the chaos campaign: a parallel sweep of the async protocols \
          over loss, link flaps, churn, node crash-recovery and partition \
          faults, with per-cell robustness aggregates, runtime invariant \
          monitoring, stall diagnoses, and optional fault-schedule shrinking")
    Term.(
      term_result
        (const run $ seed_arg $ grid_arg $ n_override $ tokens_override
       $ trials_override $ shrink_arg $ shrink_out_arg $ jobs_arg
       $ trace_out_arg $ metrics_out_arg))

(* ---------------------- ocd dht ------------------------------------ *)

let dht_cmd =
  let run seed topology n tokens threshold loss crash churn jobs trace_out
      metrics_out =
    let inst =
      build_instance ~seed ~topology ~n ~tokens ~threshold ~files:1
        ~multi_sender:false
    in
    let profile =
      match loss with
      | None -> Ocd_async.Net.default
      | Some l -> { Ocd_async.Net.default with Ocd_async.Net.loss = l }
    in
    let condition =
      if churn then begin
        let sources =
          List.filter
            (fun v -> not (Bitset.is_empty inst.Instance.have.(v)))
            (List.init (Instance.vertex_count inst) (fun v -> v))
        in
        Ocd_dynamics.Condition.churn ~seed:(seed + 13) ~protected:sources
          ~leave_prob:0.02 ~return_prob:0.3
      end
      else Ocd_dynamics.Condition.static
    in
    let faults =
      match crash with
      | None -> Ocd_dynamics.Faults.none
      | Some p -> Ocd_dynamics.Faults.crashes ~seed:(seed + 17) ~crash_prob:p ()
    in
    (* The omniscient baseline first, then the DHT protocol it is
       measured against; both under the same profile/faults/seed. *)
    let chosen = [ "async-local"; "dht-rarest" ] in
    Printf.printf
      "instance: n=%d m=%d deficit=%d; loss=%.2f crash=%.2f churn=%b\n\n"
      (Instance.vertex_count inst)
      inst.Instance.token_count (Instance.total_deficit inst)
      profile.Ocd_async.Net.loss
      (match crash with Some p -> p | None -> 0.0)
      churn;
    with_observed ~trace_out ~metrics_out (fun obs ->
        let runs =
          Pool.map ~obs ~jobs
            (fun name ->
              (* Stats are created inside the task so each worker domain
                 owns its counters; Pool.map's join publishes them. *)
              let stats = Ocd_dht.Node.fresh_stats () in
              let protocol =
                if name = "dht-rarest" then
                  Ocd_dht.Dht_rarest.protocol ~stats ()
                else Ocd_dht.Registry.find_exn name
              in
              let pobs = Ocd_obs.child obs in
              let r =
                Ocd_async.Runtime.run ~obs:pobs ~profile ~condition ~faults
                  ~protocol ~seed inst
              in
              (r, stats, pobs))
            chosen
        in
        if obs.Ocd_obs.on then
          List.iteri
            (fun i (name, (_, _, pobs)) ->
              Ocd_obs.absorb ~into:obs ~pid:i ~prefix:(name ^ "/") pobs)
            (List.combine chosen runs);
        Printf.printf "%-12s %8s %8s %10s %9s %8s %8s %8s %8s %8s\n" "protocol"
          "rounds" "ticks" "makespan" "data" "control" "retrans" "crashes"
          "restarts" "goodput";
        List.iter
          (fun ((r : Ocd_async.Runtime.run), _, _) ->
            Printf.printf "%-12s %8s %8s %10s %9d %8d %8d %8d %8d %8.3f\n"
              r.Ocd_async.Runtime.protocol_name
              (match r.Ocd_async.Runtime.outcome with
              | Ocd_async.Runtime.Completed ->
                string_of_int r.Ocd_async.Runtime.rounds
              | Ocd_async.Runtime.Timed_out -> "timeout")
              (match r.Ocd_async.Runtime.completion_ticks with
              | Some t -> string_of_int t
              | None -> "-")
              (Metrics.makespan_cell r.Ocd_async.Runtime.metrics)
              r.Ocd_async.Runtime.data_messages
              r.Ocd_async.Runtime.control_messages
              r.Ocd_async.Runtime.retransmissions r.Ocd_async.Runtime.crashes
              r.Ocd_async.Runtime.restarts r.Ocd_async.Runtime.goodput)
          runs;
        List.iter
          (fun (name, ((_ : Ocd_async.Runtime.run), s, _)) ->
            if name = "dht-rarest" then begin
              Printf.printf
                "\ndht: lookups=%d mean_hops=%.2f max_hops=%d failures=%d \
                 stores=%d queries=%d joins=%d evictions=%d\n"
                s.Ocd_dht.Node.lookups
                (Ocd_dht.Node.mean_hops s)
                s.Ocd_dht.Node.max_hops s.Ocd_dht.Node.failures
                s.Ocd_dht.Node.stores s.Ocd_dht.Node.queries
                s.Ocd_dht.Node.joins s.Ocd_dht.Node.evictions;
              if obs.Ocd_obs.on then begin
                let put k v = Ocd_obs.Metrics.add obs.Ocd_obs.metrics k v in
                put "dht/evictions" s.Ocd_dht.Node.evictions;
                put "dht/failures" s.Ocd_dht.Node.failures;
                put "dht/hops" s.Ocd_dht.Node.hops;
                put "dht/joins" s.Ocd_dht.Node.joins;
                put "dht/lookups" s.Ocd_dht.Node.lookups;
                put "dht/max_hops" s.Ocd_dht.Node.max_hops;
                put "dht/queries" s.Ocd_dht.Node.queries;
                put "dht/stores" s.Ocd_dht.Node.stores
              end
            end)
          (List.combine chosen runs))
  in
  let loss_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "loss" ] ~docv:"P" ~doc:"Override per-message loss probability.")
  in
  let crash_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "crash" ] ~docv:"P"
          ~doc:
            "Per-round crash probability (crashed nodes lose all state and \
             restart, rejoining the DHT ring through the sources).")
  in
  let churn_arg =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:"Add membership churn (sources protected), seeded from --seed.")
  in
  Cmd.v
    (Cmd.info "dht"
       ~doc:
         "Run the dht-rarest protocol (Chord-style provider discovery, no \
          global knowledge) against the omniscient async-local baseline on \
          the same instance, with optional crash/churn faults")
    Term.(
      term_result
        (const run $ seed_arg $ topology_arg $ n_arg $ tokens_arg
       $ threshold_arg $ loss_arg $ crash_arg $ churn_arg $ jobs_arg
       $ trace_out_arg $ metrics_out_arg))

(* ---------------------- ocd trace ---------------------------------- *)

let trace_cmd =
  let run seed topology n tokens threshold strategy_name output =
    let inst =
      build_instance ~seed ~topology ~n ~tokens ~threshold ~files:1
        ~multi_sender:false
    in
    let strategy =
      match strategy_name with
      | None -> Ocd_heuristics.Local_rarest.strategy
      | Some name -> (
        match
          List.find_opt
            (fun s -> s.Ocd_engine.Strategy.name = name)
            (all_strategies ())
        with
        | Some s -> s
        | None ->
          Printf.eprintf "unknown strategy %S\n" name;
          exit 2)
    in
    let run =
      Ocd_engine.Engine.completed_exn
        (Ocd_engine.Engine.run ~strategy ~seed:(seed + 1) inst)
    in
    let buf = Buffer.create 4096 in
    Printf.bprintf buf "%s on n=%d m=%d:\n\n"
      run.Ocd_engine.Engine.strategy_name
      (Instance.vertex_count inst)
      inst.Instance.token_count;
    Buffer.add_string buf
      (Ocd_engine.Trace.render ~width:40 inst run.Ocd_engine.Engine.schedule);
    let fairness = Fairness.of_schedule inst run.Ocd_engine.Engine.schedule in
    Printf.bprintf buf "\nJain fairness over forwarding load: %.3f\n"
      fairness.Fairness.jain_index;
    emit ~output (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one strategy and render its per-step progress timeline")
    Term.(
      term_result
        (const run $ seed_arg $ topology_arg $ n_arg $ tokens_arg
       $ threshold_arg $ strategy_arg $ output_arg))

(* ---------------------- ocd profile -------------------------------- *)

let profile_cmd =
  let run kind seed topology n tokens jobs =
    let probe = Ocd_obs.Probe.create () in
    (* A probing scope with the null sink: deterministic streams stay
       off, the probe collects wall-clock and GC deltas per phase. *)
    let obs = Ocd_obs.create ~probe () in
    let title =
      match kind with
      | "run" ->
        let inst =
          build_instance ~seed ~topology ~n ~tokens ~threshold:1.0 ~files:1
            ~multi_sender:false
        in
        let strategies = all_strategies () in
        List.iter
          (fun strategy ->
            ignore
              (Ocd_engine.Engine.run ~obs ~strategy ~seed:(seed + 1) inst))
          strategies;
        Printf.sprintf "ocd profile run: n=%d m=%d, %d strategies"
          (Instance.vertex_count inst)
          inst.Instance.token_count (List.length strategies)
      | "async" ->
        let inst =
          build_instance ~seed ~topology ~n ~tokens ~threshold:1.0 ~files:1
            ~multi_sender:false
        in
        List.iter
          (fun name ->
            let protocol = Ocd_dht.Registry.find_exn name in
            ignore (Ocd_async.Runtime.run ~obs ~protocol ~seed inst))
          Ocd_dht.Registry.names;
        Printf.sprintf "ocd profile async: n=%d m=%d, %d protocols"
          (Instance.vertex_count inst)
          inst.Instance.token_count
          (List.length Ocd_dht.Registry.names)
      | "chaos" ->
        let grid = Ocd_bench.Chaos.smoke_grid in
        ignore (Ocd_bench.Chaos.run ~obs ~jobs ~seed grid);
        Printf.sprintf "ocd profile chaos: smoke grid, %d cells x %d trials"
          (List.length grid.Ocd_bench.Chaos.cells)
          grid.Ocd_bench.Chaos.trials
      | other ->
        Printf.eprintf "unknown profile workload %S (run, async, chaos)\n"
          other;
        exit 2
    in
    print_string (Ocd_obs.Probe.render ~title probe)
  in
  let kind_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload to profile: run (sync engine), async or chaos.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload under the wall-clock/allocation probe and print \
          the per-phase table (strategy decide/apply phases, protocol \
          message handlers, simulator events, pool workers).  Probe \
          numbers are non-deterministic by nature; the deterministic \
          metrics/trace streams are the --metrics-out/--trace-out flags \
          of run, async and chaos.")
    Term.(
      const run $ kind_arg $ seed_arg $ topology_arg $ n_arg $ tokens_arg
      $ jobs_arg)

(* ---------------------- ocd explain -------------------------------- *)

let explain_cmd =
  let render_dec ~label ~completion dec =
    match dec with
    | None ->
      Printf.printf "%s: no completion event — the run timed out, so there is \
                     no critical path to attribute\n\n"
        label
    | Some (d : Ocd_bench.Explain.decomposition) ->
      let sum =
        List.fold_left (fun a (_, n) -> a + n) 0 d.Ocd_bench.Explain.by_category
      in
      assert (sum = d.Ocd_bench.Explain.makespan);
      (match completion with
      | Some t -> assert (t = d.Ocd_bench.Explain.makespan)
      | None -> ());
      Ocd_bench.Report.render
        (Ocd_bench.Explain.table
           ~title:(label ^ ": critical-path attribution")
           d);
      print_string (Ocd_bench.Explain.notes d);
      print_newline ()
  in
  let flush_path_out ~path_out sink =
    match path_out with
    | None -> Ok ()
    | Some path ->
      let* oc = open_out_result path in
      let jsonl = Ocd_obs.Sink.jsonl oc in
      List.iter (Ocd_obs.Sink.emit jsonl) (Ocd_obs.Sink.events sink);
      Ocd_obs.Sink.close jsonl;
      close_out oc;
      Ok ()
  in
  let run mode seed topology n tokens threshold protocol_name strategy_name
      profile_name loss pace grid_name cell_label trial jobs path_out =
    match mode with
    | "run" ->
      let inst =
        build_instance ~seed ~topology ~n ~tokens ~threshold ~files:1
          ~multi_sender:false
      in
      let strategy =
        let name = Option.value strategy_name ~default:"local" in
        match
          List.find_opt
            (fun s -> s.Ocd_engine.Strategy.name = name)
            (all_strategies ())
        with
        | Some s -> s
        | None ->
          Printf.eprintf "unknown strategy %S\n" name;
          exit 2
      in
      let r = Ocd_engine.Engine.run ~strategy ~seed:(seed + 1) inst in
      (match r.Ocd_engine.Engine.outcome with
      | Ocd_engine.Engine.Completed ->
        (* sync rounds are the tick unit here (pace 1): the attribution
           is the schedule's token-dependency critical path *)
        render_dec ~label:strategy.Ocd_engine.Strategy.name ~completion:None
          (Ocd_bench.Explain.of_schedule ~instance:inst
             r.Ocd_engine.Engine.schedule)
      | Ocd_engine.Engine.Stalled step ->
        Printf.printf "%s stalled at step %d — no completion to explain\n"
          strategy.Ocd_engine.Strategy.name step
      | Ocd_engine.Engine.Step_limit ->
        Printf.printf "%s hit the step limit — no completion to explain\n"
          strategy.Ocd_engine.Strategy.name);
      if path_out <> None then
        Printf.eprintf
          "note: --path-out needs a causal log; it applies to the async and \
           chaos-cell modes\n";
      Ok ()
    | "async" ->
      let inst =
        build_instance ~seed ~topology ~n ~tokens ~threshold ~files:1
          ~multi_sender:false
      in
      let base_profile =
        match profile_name with
        | "default" -> Ocd_async.Net.default
        | "lockstep" -> Ocd_async.Net.lockstep
        | other ->
          Printf.eprintf "unknown profile %S (default, lockstep)\n" other;
          exit 2
      in
      let profile =
        {
          base_profile with
          Ocd_async.Net.loss =
            (match loss with
            | Some l -> l
            | None -> base_profile.Ocd_async.Net.loss);
          pace =
            (match pace with
            | Some p -> p
            | None -> base_profile.Ocd_async.Net.pace);
        }
      in
      let chosen =
        match protocol_name with
        | None -> Ocd_dht.Registry.names
        | Some name ->
          if List.mem name Ocd_dht.Registry.names then [ name ]
          else begin
            Printf.eprintf "%s\n"
              (Ocd_async.Registry.unknown ~available:Ocd_dht.Registry.names
                 name);
            exit 2
          end
      in
      Printf.printf
        "instance: n=%d m=%d deficit=%d; profile=%s pace=%d loss=%.2f\n\n"
        (Instance.vertex_count inst)
        inst.Instance.token_count (Instance.total_deficit inst) profile_name
        profile.Ocd_async.Net.pace profile.Ocd_async.Net.loss;
      let sink =
        if path_out <> None then Ocd_obs.Sink.memory () else Ocd_obs.Sink.null
      in
      let obs =
        if path_out <> None then Ocd_obs.create ~sink () else Ocd_obs.disabled
      in
      (* One causal log per protocol, filled in the worker; extraction
         and rendering happen in protocol order afterwards, so stdout
         and the --path-out file are byte-identical for any --jobs. *)
      let results =
        Pool.map ~obs ~jobs
          (fun name ->
            let protocol = Ocd_dht.Registry.find_exn name in
            let causal = Ocd_obs.Causal.create () in
            let pobs = Ocd_obs.child obs in
            let r =
              Ocd_async.Runtime.run ~obs:pobs ~causal ~profile ~protocol ~seed
                inst
            in
            (r, causal, pobs))
          chosen
      in
      List.iteri
        (fun i (name, ((_ : Ocd_async.Runtime.run), causal, pobs)) ->
          if obs.Ocd_obs.on then
            Ocd_obs.absorb ~into:obs ~pid:i ~prefix:(name ^ "/") pobs;
          Ocd_bench.Explain.flow_overlay ~sink ~pid:i causal)
        (List.combine chosen results);
      List.iter2
        (fun name ((r : Ocd_async.Runtime.run), causal, _) ->
          render_dec ~label:name
            ~completion:r.Ocd_async.Runtime.completion_ticks
            (Ocd_bench.Explain.of_causal ~pace:profile.Ocd_async.Net.pace
               ~instance:inst causal))
        chosen results;
      flush_path_out ~path_out sink
    | "chaos-cell" ->
      let grid =
        match grid_name with
        | "smoke" -> Ocd_bench.Chaos.smoke_grid
        | "default" -> Ocd_bench.Chaos.default_grid
        | "failing" -> Ocd_bench.Chaos.failing_grid
        | other ->
          Printf.eprintf
            "unknown grid %S (expected smoke, default or failing)\n" other;
          exit 2
      in
      let cell_label =
        match cell_label with
        | Some c -> c
        | None ->
          Printf.eprintf
            "chaos-cell needs --cell LABEL (the campaign report's env \
             column)\n";
          exit 2
      in
      let protocol = Option.value protocol_name ~default:"async-local" in
      (match
         Ocd_bench.Chaos.trial_setup ~seed grid ~cell_label ~protocol ~trial
       with
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
      | Ok ts ->
        let sink =
          if path_out <> None then Ocd_obs.Sink.memory ()
          else Ocd_obs.Sink.null
        in
        let obs =
          if path_out <> None then Ocd_obs.create ~sink ()
          else Ocd_obs.disabled
        in
        let causal = Ocd_obs.Causal.create () in
        let r =
          Ocd_async.Runtime.run ~obs ~causal
            ~profile:ts.Ocd_bench.Chaos.t_profile
            ~condition:ts.Ocd_bench.Chaos.t_condition
            ~faults:ts.Ocd_bench.Chaos.t_faults
            ~monitor:(Ocd_async.Monitor.create ())
            ~protocol:ts.Ocd_bench.Chaos.t_protocol
            ~seed:ts.Ocd_bench.Chaos.t_run_seed ts.Ocd_bench.Chaos.t_instance
        in
        Printf.printf "cell %s, protocol %s, trial %d (run seed %d)\n\n"
          cell_label protocol trial ts.Ocd_bench.Chaos.t_run_seed;
        Ocd_bench.Explain.flow_overlay ~sink ~pid:0 causal;
        render_dec
          ~label:(cell_label ^ "/" ^ protocol)
          ~completion:r.Ocd_async.Runtime.completion_ticks
          (Ocd_bench.Explain.of_causal ~faults:ts.Ocd_bench.Chaos.t_faults
             ~pace:ts.Ocd_bench.Chaos.t_profile.Ocd_async.Net.pace
             ~instance:ts.Ocd_bench.Chaos.t_instance causal);
        flush_path_out ~path_out sink)
    | other ->
      Printf.eprintf "unknown explain mode %S (run, async, chaos-cell)\n" other;
      exit 2
  in
  let mode_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MODE"
          ~doc:
            "What to explain: run (a synchronous schedule's \
             token-dependency critical path), async (an async protocol run \
             under a live causal log), or chaos-cell (replay one chaos \
             campaign grid point).")
  in
  let protocol_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol" ] ~docv:"NAME"
          ~doc:
            "Async protocol (async mode default: all; chaos-cell default: \
             async-local).")
  in
  let profile_arg =
    Arg.(
      value & opt string "default"
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:"Network profile for async mode: default or lockstep.")
  in
  let loss_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "loss" ] ~docv:"P" ~doc:"Override per-message loss probability.")
  in
  let pace_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "pace" ] ~docv:"TICKS" ~doc:"Override ticks per round.")
  in
  let grid_arg =
    Arg.(
      value & opt string "smoke"
      & info [ "grid" ] ~docv:"GRID"
          ~doc:"Chaos grid for chaos-cell mode: smoke, default or failing.")
  in
  let cell_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cell" ] ~docv:"LABEL"
          ~doc:
            "Chaos cell label to replay (the campaign report's env column, \
             e.g. baseline or loss=0.20+crash=0.05).")
  in
  let trial_arg =
    Arg.(
      value & opt int 0
      & info [ "trial" ] ~docv:"T" ~doc:"Trial index within the cell.")
  in
  let path_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "path-out" ] ~docv:"FILE"
          ~doc:
            "Write the run's trace plus its critical path as Chrome \
             trace-event JSON: the path is emitted as flow events (ph \
             s/t/f, id 1, name critical-path), which Perfetto draws as \
             arrows across the per-node tracks.  Timestamps are simulator \
             ticks, so the file is byte-identical across $(b,--jobs).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Attribute a run's makespan tick-by-tick over its causal critical \
          path: transmit, queue, backoff, suspicion, crash-down, \
          partition-down and protocol-idle categories that sum exactly to \
          the completion time, next to the paper's lower bound")
    Term.(
      term_result
        (const run $ mode_arg $ seed_arg $ topology_arg $ n_arg $ tokens_arg
       $ threshold_arg $ protocol_arg $ strategy_arg $ profile_arg $ loss_arg
       $ pace_arg $ grid_arg $ cell_arg $ trial_arg $ jobs_arg $ path_out_arg))

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "ocd" ~version:"1.0.0"
      ~doc:"The Overlay Network Content Distribution problem (PODC'05)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            run_cmd;
            figure_cmd;
            exact_cmd;
            reduce_cmd;
            bounds_cmd;
            experiment_cmd;
            export_cmd;
            trace_cmd;
            async_cmd;
            chaos_cmd;
            dht_cmd;
            profile_cmd;
            explain_cmd;
          ]))
