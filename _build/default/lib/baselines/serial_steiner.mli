(** The §3.3 serial-Steiner offline schedule.

    "If we do not care about number of timesteps, then optimal
    bandwidth can be achieved by distributing each token serially over
    the Steiner tree to the nodes that want it."

    For every token we build a Takahashi–Matsuyama Steiner tree from
    its initial holders to its wanters (the multi-holder case handled
    by multi-source growth, the paper's 0-cost-arc merge), then emit
    the tree's arcs as BFS waves — one wave per timestep — with each
    token scheduled strictly after the previous one finished.  The
    result is a valid successful schedule whose bandwidth equals the
    sum of tree costs: within a factor 2 of the EOCD optimum per
    token, and exactly the pruned-optimal value when trees are
    shortest-path trees.  Its makespan, by construction, is the sum of
    tree depths — the time/bandwidth trade-off of Figure 1 taken to
    its bandwidth-side extreme. *)

open Ocd_core

val plan : Instance.t -> Schedule.t
(** @raise Invalid_argument when the instance is unsatisfiable. *)

val bandwidth_upper_bound : Instance.t -> int
(** Total Steiner-tree cost = the bandwidth of {!plan} (an upper
    bound on the EOCD optimum). *)

val strategy : Ocd_engine.Strategy.t
(** {!plan} replayed through the engine (offline global strategy). *)
