(** FastReplica-style split-and-exchange (related work, §2).

    "The source of a file divides the file into n blocks, sends a
    different block to each of the receivers, and then instructs the
    receivers to retrieve the blocks from each other."

    On a general overlay (rather than FastReplica's clique of n
    receivers) the strategy has two concurrent behaviours: the source
    pushes chunk [i] of the token space down its [i]-th outgoing arc
    (chunk sizes proportional to arc capacities), while every other
    vertex performs a deterministic pairwise exchange — forwarding to
    each out-neighbour the lowest-id tokens it holds that the
    neighbour lacks.  The chunked first phase seeds diversity the way
    FastReplica's distribution step does; the exchange phase is its
    collection step generalised to a mesh. *)

val strategy : ?source:int -> unit -> Ocd_engine.Strategy.t
