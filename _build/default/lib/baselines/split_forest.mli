(** SplitStream-style striped forest (related work, §2).

    SplitStream splits content into [k] stripes and pushes each down
    its own interior-node-disjoint tree; Young et al. build [k]
    edge-disjoint spanning trees.  We extract up to [k] arc-disjoint
    BFS trees rooted at the source ({!Ocd_graph.Disjoint_trees}),
    assign token [t] to stripe [t mod k], and pipeline each stripe
    down its tree.  When the graph only yields [j < k] disjoint trees
    the stripes fold onto the [j] available trees. *)

val strategy : ?source:int -> k:int -> unit -> Ocd_engine.Strategy.t
