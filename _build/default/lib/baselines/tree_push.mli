(** Overcast-style single-tree push (related work, §2).

    Overcast "attempts to construct a bandwidth-optimized overlay
    tree"; every vertex receives all content from its tree parent.  We
    model it as a max-bottleneck (widest-path) spanning tree rooted at
    the source, down which tokens are pipelined: each step every tree
    arc forwards as many still-missing tokens as its capacity allows.

    This baseline illustrates the structural weakness the paper's
    mesh-oriented heuristics avoid: each vertex's download rate is
    capped by a single inbound arc, so makespan is bounded below by
    [deficit / bottleneck] on the worst root-to-leaf path. *)

val strategy : ?source:int -> unit -> Ocd_engine.Strategy.t
(** [source] defaults to the vertex holding the most tokens. *)
