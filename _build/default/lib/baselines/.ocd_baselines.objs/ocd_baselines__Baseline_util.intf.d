lib/baselines/baseline_util.mli: Bitset Instance Move Ocd_core Ocd_graph Ocd_prelude
