lib/baselines/fast_replica.ml: Array Baseline_util Bitset Digraph Instance List Ocd_core Ocd_engine Ocd_graph Ocd_prelude
