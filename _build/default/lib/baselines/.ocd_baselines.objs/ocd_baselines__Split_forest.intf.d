lib/baselines/split_forest.mli: Ocd_engine
