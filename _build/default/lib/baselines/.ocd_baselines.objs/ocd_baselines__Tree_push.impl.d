lib/baselines/tree_push.ml: Array Baseline_util Digraph Instance List Mst Ocd_core Ocd_engine Ocd_graph
