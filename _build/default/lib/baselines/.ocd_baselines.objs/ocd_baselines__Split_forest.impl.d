lib/baselines/split_forest.ml: Array Baseline_util Bitset Digraph Disjoint_trees Instance List Mst Ocd_core Ocd_engine Ocd_graph Ocd_prelude Printf
