lib/baselines/baseline_util.ml: Array Bitset Digraph Instance List Move Mst Ocd_core Ocd_graph Ocd_prelude Pqueue
