lib/baselines/fast_replica.mli: Ocd_engine
