lib/baselines/serial_steiner.mli: Instance Ocd_core Ocd_engine Schedule
