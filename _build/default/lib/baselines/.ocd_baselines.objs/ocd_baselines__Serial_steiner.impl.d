lib/baselines/serial_steiner.ml: Array Bitset Instance List Move Ocd_core Ocd_engine Ocd_graph Ocd_prelude Queue Schedule
