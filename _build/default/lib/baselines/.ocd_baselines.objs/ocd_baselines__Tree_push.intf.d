lib/baselines/tree_push.mli: Ocd_engine
