open Ocd_core
open Ocd_prelude

(* Orient a Steiner tree's arcs into BFS waves from the holder set:
   wave w carries the arcs whose source sits at depth w. *)
let waves_of_tree (tree : Ocd_graph.Steiner.t) ~holders ~vertex_count =
  let depth = Array.make vertex_count (-1) in
  List.iter (fun h -> depth.(h) <- 0) holders;
  let children = Array.make vertex_count [] in
  List.iter
    (fun (u, v) -> children.(u) <- v :: children.(u))
    tree.Ocd_graph.Steiner.arcs;
  let queue = Queue.create () in
  List.iter (fun h -> Queue.add h queue) holders;
  let max_depth = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if depth.(v) = -1 then begin
          depth.(v) <- depth.(u) + 1;
          max_depth := max !max_depth depth.(v);
          Queue.add v queue
        end)
      children.(u)
  done;
  let waves = Array.make !max_depth [] in
  List.iter
    (fun (u, v) ->
      if depth.(u) >= 0 then waves.(depth.(u)) <- (u, v) :: waves.(depth.(u)))
    tree.Ocd_graph.Steiner.arcs;
  waves

let steiner_tree (inst : Instance.t) token =
  let holders = Instance.holders inst token in
  let wanters =
    List.filter
      (fun v -> not (Bitset.mem inst.have.(v) token))
      (Instance.wanters inst token)
  in
  if wanters = [] then None
  else begin
    let tree =
      Ocd_graph.Steiner.takahashi_matsuyama inst.graph ~sources:holders
        ~terminals:wanters
    in
    if not (Ocd_graph.Steiner.covers_all tree) then
      invalid_arg "Serial_steiner: instance unsatisfiable";
    Some (tree, holders)
  end

let plan (inst : Instance.t) =
  let n = Instance.vertex_count inst in
  let steps = ref [] in
  for token = 0 to inst.token_count - 1 do
    match steiner_tree inst token with
    | None -> ()
    | Some (tree, holders) ->
      let waves = waves_of_tree tree ~holders ~vertex_count:n in
      Array.iter
        (fun wave ->
          let moves =
            List.map (fun (src, dst) -> { Move.src; dst; token }) wave
          in
          steps := moves :: !steps)
        waves
  done;
  Schedule.of_steps (List.rev !steps)

let bandwidth_upper_bound (inst : Instance.t) =
  let acc = ref 0 in
  for token = 0 to inst.token_count - 1 do
    match steiner_tree inst token with
    | None -> ()
    | Some (tree, _) -> acc := !acc + Ocd_graph.Steiner.cost tree
  done;
  !acc

let strategy =
  let make inst _rng =
    let steps = Array.of_list (Schedule.steps (plan inst)) in
    fun (ctx : Ocd_engine.Strategy.context) ->
      if ctx.step < Array.length steps then steps.(ctx.step) else []
  in
  { Ocd_engine.Strategy.name = "serial-steiner"; make }
