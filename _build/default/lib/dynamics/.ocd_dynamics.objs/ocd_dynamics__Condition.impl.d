lib/dynamics/condition.ml: Digraph Hashtbl List Ocd_graph Ocd_prelude
