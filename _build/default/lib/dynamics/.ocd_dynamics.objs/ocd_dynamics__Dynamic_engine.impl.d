lib/dynamics/dynamic_engine.ml: Array Bitset Condition Format Hashtbl Instance List Metrics Move Ocd_core Ocd_engine Ocd_graph Ocd_prelude Option Prng Schedule Validate
