lib/dynamics/dynamic_engine.mli: Condition Instance Metrics Ocd_core Ocd_engine Schedule
