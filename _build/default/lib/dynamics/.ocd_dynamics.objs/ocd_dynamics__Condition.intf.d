lib/dynamics/condition.mli: Ocd_graph
