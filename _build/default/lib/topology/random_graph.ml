open Ocd_prelude
open Ocd_graph

let paper_p n =
  if n <= 1 then 1.0
  else Float.min 1.0 (2.0 *. log (float_of_int n) /. float_of_int n)

(* Link weakly-connected components into one by adding an edge between
   a representative of each consecutive component pair. *)
let repair_edges g rng =
  match Components.weakly_connected_components g with
  | [] | [ _ ] -> []
  | components ->
    let reps = List.map (fun c -> Prng.pick_list rng c) components in
    let rec pair = function
      | a :: (b :: _ as rest) -> (a, b) :: pair rest
      | [ _ ] | [] -> []
    in
    pair reps

let finalize rng ~n ~weights ~connect edges =
  let weighted = Weights.assign rng weights edges in
  let g = Digraph.of_edges ~vertex_count:n weighted in
  if not connect then g
  else
    match repair_edges g rng with
    | [] -> g
    | extra ->
      let weighted_extra = Weights.assign rng weights extra in
      Digraph.of_edges ~vertex_count:n (weighted @ weighted_extra)

let erdos_renyi rng ~n ?p ?(weights = Weights.paper_default) ?(connect = true)
    () =
  if n <= 0 then invalid_arg "Random_graph.erdos_renyi: n <= 0";
  let p = match p with Some p -> p | None -> paper_p n in
  if p < 0.0 || p > 1.0 then invalid_arg "Random_graph.erdos_renyi: bad p";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  finalize rng ~n ~weights ~connect !edges

let gnm rng ~n ~m ?(weights = Weights.paper_default) ?(connect = true) () =
  if n <= 0 then invalid_arg "Random_graph.gnm: n <= 0";
  let max_edges = n * (n - 1) / 2 in
  if m < 0 || m > max_edges then invalid_arg "Random_graph.gnm: bad m";
  let chosen = Hashtbl.create (2 * m) in
  while Hashtbl.length chosen < m do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then begin
      let e = (min u v, max u v) in
      if not (Hashtbl.mem chosen e) then Hashtbl.replace chosen e ()
    end
  done;
  let edges = Hashtbl.fold (fun e () acc -> e :: acc) chosen [] in
  finalize rng ~n ~weights ~connect (List.sort compare edges)

let waxman rng ~n ?(alpha = 0.4) ?(beta = 0.2)
    ?(weights = Weights.paper_default) ?(connect = true) () =
  if n <= 0 then invalid_arg "Random_graph.waxman: n <= 0";
  if alpha <= 0.0 || beta <= 0.0 then invalid_arg "Random_graph.waxman: params";
  let xs = Array.init n (fun _ -> Prng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Prng.float rng 1.0) in
  let max_dist = sqrt 2.0 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Float.hypot (xs.(u) -. xs.(v)) (ys.(u) -. ys.(v)) in
      let p = alpha *. exp (-.d /. (beta *. max_dist)) in
      if Prng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  finalize rng ~n ~weights ~connect !edges
