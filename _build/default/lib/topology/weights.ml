open Ocd_prelude

type policy = Uniform of int * int | Constant of int

let paper_default = Uniform (3, 15)

let draw rng = function
  | Constant c ->
    if c <= 0 then invalid_arg "Weights: non-positive constant capacity";
    c
  | Uniform (lo, hi) ->
    if lo <= 0 || hi < lo then invalid_arg "Weights: bad uniform bounds";
    Prng.int_in rng lo hi

let assign rng policy edges =
  List.map (fun (u, v) -> (u, v, draw rng policy)) edges
