lib/topology/topology.mli: Ocd_graph Ocd_prelude Prng Weights
