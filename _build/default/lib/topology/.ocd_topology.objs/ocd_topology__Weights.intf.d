lib/topology/weights.mli: Ocd_prelude
