lib/topology/random_graph.ml: Array Components Digraph Float Hashtbl List Ocd_graph Ocd_prelude Prng Weights
