lib/topology/weights.ml: List Ocd_prelude Prng
