lib/topology/transit_stub.mli: Ocd_graph Ocd_prelude Prng Weights
