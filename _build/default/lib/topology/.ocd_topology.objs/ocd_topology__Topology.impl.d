lib/topology/topology.ml: Random_graph Transit_stub Weights
