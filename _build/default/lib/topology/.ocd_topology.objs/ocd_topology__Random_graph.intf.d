lib/topology/random_graph.mli: Ocd_graph Ocd_prelude Prng Weights
