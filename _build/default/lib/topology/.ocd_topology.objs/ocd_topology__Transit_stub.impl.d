lib/topology/transit_stub.ml: Array List Ocd_graph Ocd_prelude Prng Weights
