type kind = Random | Transit_stub | Waxman

let all_kinds = [ Random; Transit_stub; Waxman ]

let kind_name = function
  | Random -> "random"
  | Transit_stub -> "transit-stub"
  | Waxman -> "waxman"

let kind_of_name = function
  | "random" -> Some Random
  | "transit-stub" | "transit_stub" | "ts" -> Some Transit_stub
  | "waxman" -> Some Waxman
  | _ -> None

let generate rng kind ~n ?(weights = Weights.paper_default) () =
  match kind with
  | Random -> Random_graph.erdos_renyi rng ~n ~weights ()
  | Waxman -> Random_graph.waxman rng ~n ~weights ()
  | Transit_stub ->
    Transit_stub.generate rng ~weights (Transit_stub.params_for_size n)
