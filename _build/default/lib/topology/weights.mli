(** Edge capacity assignment.

    The paper's evaluation draws every edge weight uniformly from
    [\[3, 15\]] tokens per timestep ("chosen to capture the variety of
    real vertex connectedness"); this module centralises that policy so
    every generator and test uses the same distribution. *)

type policy =
  | Uniform of int * int  (** inclusive bounds; the paper uses [Uniform (3, 15)] *)
  | Constant of int

val paper_default : policy
(** [Uniform (3, 15)]. *)

val draw : Ocd_prelude.Prng.t -> policy -> int

val assign :
  Ocd_prelude.Prng.t ->
  policy ->
  (int * int) list ->
  (int * int * int) list
(** Attach a capacity to each undirected edge. *)
