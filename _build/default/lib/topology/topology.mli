(** Uniform façade over the topology generators, used by the CLI and
    the benchmark harness to select evaluation graphs by name. *)

open Ocd_prelude

type kind =
  | Random        (** Erdős–Rényi with the paper's [2 ln n / n] *)
  | Transit_stub  (** GT-ITM-style two-level hierarchy *)
  | Waxman        (** geometric random graph *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

val generate :
  Prng.t -> kind -> n:int -> ?weights:Weights.policy -> unit ->
  Ocd_graph.Digraph.t
(** A connected graph of (approximately, for transit-stub) [n]
    vertices. *)
