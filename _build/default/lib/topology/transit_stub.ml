open Ocd_prelude

type params = {
  transit_domains : int;
  transit_nodes : int;
  stubs_per_transit_node : int;
  stub_nodes : int;
  intra_edge_prob : float;
  extra_transit_stub : int;
  extra_stub_stub : int;
}

let default_params =
  {
    transit_domains = 2;
    transit_nodes = 4;
    stubs_per_transit_node = 3;
    stub_nodes = 8;
    intra_edge_prob = 0.3;
    extra_transit_stub = 4;
    extra_stub_stub = 4;
  }

let vertex_total p =
  let transit = p.transit_domains * p.transit_nodes in
  transit + (transit * p.stubs_per_transit_node * p.stub_nodes)

let params_for_size n =
  if n < 8 then invalid_arg "Transit_stub.params_for_size: n too small";
  (* Keep the backbone shape of [default_params]; scale stub-domain
     size to hit the target count. *)
  let base = default_params in
  let transit = base.transit_domains * base.transit_nodes in
  let stub_domains = transit * base.stubs_per_transit_node in
  let stub_nodes = max 1 ((n - transit + stub_domains - 1) / stub_domains) in
  { base with stub_nodes }

(* A connected random graph on the vertex id list: random spanning tree
   (each vertex links to a random predecessor in a shuffled order) plus
   independent extra edges. *)
let connected_random rng ~prob ids =
  let ids = Array.of_list ids in
  Prng.shuffle rng ids;
  let edges = ref [] in
  let n = Array.length ids in
  for i = 1 to n - 1 do
    let j = Prng.int rng i in
    edges := (ids.(j), ids.(i)) :: !edges
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (* Tree edges above use shuffled positions; extra edges here may
         duplicate them — Digraph merges duplicates by summing, which
         only fattens a link, as GT-ITM's multigraph flattening does. *)
      if Prng.bernoulli rng prob then edges := (ids.(i), ids.(j)) :: !edges
    done
  done;
  !edges

let generate rng ?(weights = Weights.paper_default) p =
  if
    p.transit_domains <= 0 || p.transit_nodes <= 0
    || p.stubs_per_transit_node < 0 || p.stub_nodes <= 0
  then invalid_arg "Transit_stub.generate: bad params";
  let transit_count = p.transit_domains * p.transit_nodes in
  let edges = ref [] in
  let add es = edges := es @ !edges in
  (* Transit domains: ids [d * transit_nodes .. (d+1) * transit_nodes). *)
  let transit_ids d = List.init p.transit_nodes (fun i -> (d * p.transit_nodes) + i) in
  for d = 0 to p.transit_domains - 1 do
    add (connected_random rng ~prob:p.intra_edge_prob (transit_ids d))
  done;
  (* Backbone: ring of transit domains via random representatives (a
     connected top-level graph, as GT-ITM guarantees). *)
  for d = 0 to p.transit_domains - 2 do
    let u = Prng.pick_list rng (transit_ids d) in
    let v = Prng.pick_list rng (transit_ids (d + 1)) in
    add [ (u, v) ]
  done;
  if p.transit_domains > 2 then begin
    let u = Prng.pick_list rng (transit_ids (p.transit_domains - 1)) in
    let v = Prng.pick_list rng (transit_ids 0) in
    add [ (u, v) ]
  end;
  (* Stub domains: laid out after all transit nodes. *)
  let next_id = ref transit_count in
  let stub_vertices = ref [] in
  for anchor = 0 to transit_count - 1 do
    for _ = 1 to p.stubs_per_transit_node do
      let ids = List.init p.stub_nodes (fun i -> !next_id + i) in
      next_id := !next_id + p.stub_nodes;
      stub_vertices := ids @ !stub_vertices;
      add (connected_random rng ~prob:p.intra_edge_prob ids);
      add [ (anchor, List.hd ids) ]
    done
  done;
  let stub_vertices = Array.of_list !stub_vertices in
  (* Extra shortcut edges. *)
  if Array.length stub_vertices > 0 then begin
    for _ = 1 to p.extra_transit_stub do
      let t = Prng.int rng transit_count in
      let s = Prng.pick rng stub_vertices in
      add [ (t, s) ]
    done;
    for _ = 1 to p.extra_stub_stub do
      let a = Prng.pick rng stub_vertices in
      let b = Prng.pick rng stub_vertices in
      if a <> b then add [ (min a b, max a b) ]
    done
  end;
  let weighted = Weights.assign rng weights !edges in
  Ocd_graph.Digraph.of_edges ~vertex_count:(vertex_total p) weighted

let classify p v =
  if v < p.transit_domains * p.transit_nodes then `Transit else `Stub
