open Ocd_core
open Ocd_prelude
open Ocd_graph

type 'a result = Solved of 'a | Unsatisfiable | Budget_exceeded

type solution = { objective : int; schedule : Schedule.t }

exception Out_of_budget

(* States pack each vertex's possession into one int bitmask; the
   exact solvers are for instances with few tokens. *)
let mask_of_bitset s =
  Bitset.fold (fun t acc -> acc lor (1 lsl t)) s 0

let popcount =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  fun w -> go 0 w

let bits_of_mask mask =
  let rec go m acc =
    if m = 0 then List.rev acc
    else
      let b = m land -m in
      let rec index b i = if b = 1 then i else index (b lsr 1) (i + 1) in
      go (m land (m - 1)) (index b 0 :: acc)
  in
  go mask []

(* All submasks of [mask] with exactly [k] bits. *)
let submasks_of_size mask k =
  let bits = Array.of_list (bits_of_mask mask) in
  let n = Array.length bits in
  let acc = ref [] in
  let rec choose i chosen m =
    if chosen = k then acc := m :: !acc
    else if i >= n then ()
    else begin
      choose (i + 1) (chosen + 1) (m lor (1 lsl bits.(i)));
      (* prune: not enough bits left *)
      if n - i - 1 >= k - chosen then choose (i + 1) chosen m
    end
  in
  choose 0 0 0;
  !acc

(* All submasks of [mask] with at most [k] bits (including 0). *)
let submasks_up_to mask k =
  if mask = 0 then [ 0 ]
  else begin
    let acc = ref [] in
    let sub = ref mask in
    let continue = ref true in
    while !continue do
      if popcount !sub <= k then acc := !sub :: !acc;
      if !sub = 0 then continue := false else sub := (!sub - 1) land mask
    done;
    !acc
  end

type context = {
  instance : Instance.t;
  arcs : (int * int * int) array;  (* src, dst, capacity *)
  want_masks : int array;
  max_states : int;
  mutable explored : int;
  mutable emitted : int;
}

let make_context ?(max_states = 200_000) (inst : Instance.t) =
  if inst.token_count > Sys.int_size - 1 then
    invalid_arg "Search: too many tokens for the exact solver";
  let arcs =
    Array.of_list
      (List.map
         (fun { Digraph.src; dst; capacity } -> (src, dst, capacity))
         (Digraph.arcs inst.graph))
  in
  {
    instance = inst;
    arcs;
    want_masks = Array.map mask_of_bitset inst.want;
    max_states;
    explored = 0;
    emitted = 0;
  }

let initial_state ctx = Array.map mask_of_bitset ctx.instance.Instance.have

let satisfied ctx state =
  let n = Array.length state in
  let rec go v =
    v >= n || (state.(v) land ctx.want_masks.(v) = ctx.want_masks.(v) && go (v + 1))
  in
  go 0

let charge ctx =
  ctx.explored <- ctx.explored + 1;
  if ctx.explored > ctx.max_states then raise Out_of_budget

(* Enumerate the per-arc choice lists, then fold their cartesian
   product into successor states.  [choices_for] returns the list of
   token masks an arc may carry.  [emit] receives (state', moves,
   move_count). *)
let expand ctx state ~choices_for ~emit =
  let arcs = ctx.arcs in
  let n_arcs = Array.length arcs in
  (* Skip arcs with a single empty choice to keep recursion shallow. *)
  let relevant = ref [] in
  for i = n_arcs - 1 downto 0 do
    match choices_for arcs.(i) state with
    | [ 0 ] | [] -> ()
    | choices -> relevant := (arcs.(i), choices) :: !relevant
  done;
  let rec product pending acc_moves acc_count deliveries =
    match pending with
    | [] ->
      if acc_count > 0 then begin
        (* Successor emissions dwarf state pops on capacity-bound
           instances; budget them separately so a single state cannot
           hang the search. *)
        ctx.emitted <- ctx.emitted + 1;
        if ctx.emitted > 10 * ctx.max_states then raise Out_of_budget;
        let state' = Array.copy state in
        List.iter
          (fun (dst, mask) -> state'.(dst) <- state'.(dst) lor mask)
          deliveries;
        emit state' acc_moves acc_count
      end
    | ((src, dst, _cap), choices) :: rest ->
      List.iter
        (fun mask ->
          let moves =
            if mask = 0 then acc_moves
            else
              List.fold_left
                (fun acc token -> { Move.src; dst; token } :: acc)
                acc_moves (bits_of_mask mask)
          in
          product rest moves
            (acc_count + popcount mask)
            (if mask = 0 then deliveries else (dst, mask) :: deliveries))
        choices;
  in
  product !relevant [] 0 []

(* FOCD choices: maximal useful selections per arc. *)
let focd_choices (src, dst, cap) state =
  let useful = state.(src) land lnot state.(dst) in
  if useful = 0 then [ 0 ]
  else if popcount useful <= cap then [ useful ]
  else submasks_of_size useful cap

(* EOCD choices: every useful subset within capacity. *)
let eocd_choices (src, dst, cap) state =
  let useful = state.(src) land lnot state.(dst) in
  submasks_up_to useful cap

let reconstruct parents key =
  let rec go key acc =
    match Hashtbl.find_opt parents key with
    | None | Some None -> acc
    | Some (Some (prev_key, moves)) -> go prev_key (moves :: acc)
  in
  Schedule.of_steps (go key [])

let focd ?max_states inst =
  let ctx = make_context ?max_states inst in
  let start = initial_state ctx in
  if satisfied ctx start then
    Solved { objective = 0; schedule = Schedule.empty }
  else begin
    let visited = Hashtbl.create 1024 in
    let parents = Hashtbl.create 1024 in
    Hashtbl.replace visited start ();
    Hashtbl.replace parents start None;
    let frontier = Queue.create () in
    Queue.add (start, 0) frontier;
    let result = ref None in
    (try
       while !result = None && not (Queue.is_empty frontier) do
         let state, depth = Queue.pop frontier in
         charge ctx;
         expand ctx state ~choices_for:focd_choices ~emit:(fun state' moves _count ->
             if !result = None && not (Hashtbl.mem visited state') then begin
               Hashtbl.replace visited state' ();
               Hashtbl.replace parents state' (Some (state, List.rev moves));
               if satisfied ctx state' then
                 result :=
                   Some
                     {
                       objective = depth + 1;
                       schedule = reconstruct parents state';
                     }
               else Queue.add (state', depth + 1) frontier
             end)
       done;
       match !result with
       | Some s -> Solved s
       | None -> Unsatisfiable
     with Out_of_budget -> Budget_exceeded)
  end

module State_map = Hashtbl

let eocd ?max_states ?horizon inst =
  let ctx = make_context ?max_states inst in
  let start = initial_state ctx in
  if satisfied ctx start then
    Solved { objective = 0; schedule = Schedule.empty }
  else begin
    match horizon with
    | None ->
      (* Uniform-cost search on states, cost = moves per step. *)
      let dist : (int array, int) State_map.t = State_map.create 1024 in
      let parents = State_map.create 1024 in
      let heap = Pqueue.create () in
      State_map.replace dist start 0;
      State_map.replace parents start None;
      Pqueue.push heap ~priority:0 start;
      let result = ref None in
      (try
         let rec drain () =
           match Pqueue.pop heap with
           | None -> ()
           | Some (d, state) ->
             if !result <> None then ()
             else if d > Option.value (State_map.find_opt dist state) ~default:max_int
             then drain ()
             else if satisfied ctx state then
               result :=
                 Some { objective = d; schedule = reconstruct parents state }
             else begin
               charge ctx;
               expand ctx state ~choices_for:eocd_choices
                 ~emit:(fun state' moves count ->
                   let d' = d + count in
                   let known =
                     Option.value (State_map.find_opt dist state') ~default:max_int
                   in
                   if d' < known then begin
                     State_map.replace dist state' d';
                     State_map.replace parents state'
                       (Some (state, List.rev moves));
                     Pqueue.push heap ~priority:d' state'
                   end);
               drain ()
             end
         in
         drain ();
         match !result with Some s -> Solved s | None -> Unsatisfiable
       with Out_of_budget -> Budget_exceeded)
    | Some horizon ->
      (* Layered DP over timesteps; key = (state, step). *)
      let dist = State_map.create 1024 in
      let parents = State_map.create 1024 in
      State_map.replace dist (start, 0) 0;
      State_map.replace parents (start, 0) None;
      let layer = ref [ (start, 0) ] in
      let best = ref None in
      let note_solution key d =
        match !best with
        | Some (bd, _) when bd <= d -> ()
        | _ -> best := Some (d, key)
      in
      if satisfied ctx start then note_solution (start, 0) 0;
      (try
         for step = 0 to horizon - 1 do
           let next = ref [] in
           List.iter
             (fun (state, _) ->
               let d = State_map.find dist (state, step) in
               charge ctx;
               expand ctx state ~choices_for:eocd_choices
                 ~emit:(fun state' moves count ->
                   let key' = (state', step + 1) in
                   let d' = d + count in
                   let known =
                     Option.value (State_map.find_opt dist key') ~default:max_int
                   in
                   if d' < known then begin
                     if known = max_int then next := key' :: !next;
                     State_map.replace dist key' d';
                     State_map.replace parents key'
                       (Some ((state, step), List.rev moves));
                     if satisfied ctx state' then note_solution key' d'
                   end))
             !layer;
           layer := !next
         done;
         match !best with
         | None -> Unsatisfiable
         | Some (d, key) ->
           Solved { objective = d; schedule = reconstruct parents key }
       with Out_of_budget -> Budget_exceeded)
  end
