type relation = Le | Ge | Eq

type constr = { coeffs : float array; relation : relation; rhs : float }

type problem = {
  var_count : int;
  objective : float array;
  constraints : constr list;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

let eps = 1e-9

(* Tableau layout: columns [0, total_vars) are structural, slack and
   artificial variables; column [total_vars] is the RHS.  [basis.(i)]
   is the variable basic in row [i].  The objective row [z] satisfies
   z.(j) = reduced cost of variable j (for minimisation: optimal when
   all z.(j) >= -eps ... we store the classic "c_j - z_j" row and
   enter on negative entries). *)
type tableau = {
  rows : float array array;  (* constraint rows, RHS last *)
  z : float array;           (* objective row, RHS last = -objective value *)
  basis : int array;
  total_vars : int;
}

let check_problem p =
  if Array.length p.objective <> p.var_count then
    invalid_arg "Simplex: objective length mismatch";
  List.iter
    (fun c ->
      if Array.length c.coeffs <> p.var_count then
        invalid_arg "Simplex: constraint length mismatch")
    p.constraints

(* Build the initial tableau with slack/surplus/artificial columns and
   the phase-1 objective (minimise artificial sum) already in
   canonical form. *)
let build p =
  let constraints = Array.of_list p.constraints in
  let m = Array.length constraints in
  let n = p.var_count in
  (* Normalise RHS to be non-negative. *)
  let normalized =
    Array.map
      (fun c ->
        if c.rhs < 0.0 then
          {
            coeffs = Array.map (fun x -> -.x) c.coeffs;
            rhs = -.c.rhs;
            relation =
              (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          }
        else c)
      constraints
  in
  let slack_count =
    Array.fold_left
      (fun acc c -> match c.relation with Le | Ge -> acc + 1 | Eq -> acc)
      0 normalized
  in
  let artificial_count =
    Array.fold_left
      (fun acc c -> match c.relation with Ge | Eq -> acc + 1 | Le -> acc)
      0 normalized
  in
  let total = n + slack_count + artificial_count in
  let rows = Array.make_matrix m (total + 1) 0.0 in
  let basis = Array.make m (-1) in
  let next_slack = ref n in
  let next_artificial = ref (n + slack_count) in
  let artificials = ref [] in
  Array.iteri
    (fun i c ->
      Array.blit c.coeffs 0 rows.(i) 0 n;
      rows.(i).(total) <- c.rhs;
      (match c.relation with
      | Le ->
        rows.(i).(!next_slack) <- 1.0;
        basis.(i) <- !next_slack;
        incr next_slack
      | Ge ->
        rows.(i).(!next_slack) <- -1.0;
        incr next_slack;
        rows.(i).(!next_artificial) <- 1.0;
        basis.(i) <- !next_artificial;
        artificials := !next_artificial :: !artificials;
        incr next_artificial
      | Eq ->
        rows.(i).(!next_artificial) <- 1.0;
        basis.(i) <- !next_artificial;
        artificials := !next_artificial :: !artificials;
        incr next_artificial))
    normalized;
  (* Phase-1 objective row: minimise Σ artificials.  Canonical form
     requires zero reduced cost on basic columns, so subtract each
     artificial's row. *)
  let z = Array.make (total + 1) 0.0 in
  List.iter (fun a -> z.(a) <- 1.0) !artificials;
  Array.iteri
    (fun i b ->
      if List.mem b !artificials then
        for j = 0 to total do
          z.(j) <- z.(j) -. rows.(i).(j)
        done)
    basis;
  ({ rows; z; basis; total_vars = total }, !artificials)

let pivot t ~row ~col =
  let total = t.total_vars in
  let p = t.rows.(row).(col) in
  for j = 0 to total do
    t.rows.(row).(j) <- t.rows.(row).(j) /. p
  done;
  let eliminate target =
    let f = target.(col) in
    if Float.abs f > eps then
      for j = 0 to total do
        target.(j) <- target.(j) -. (f *. t.rows.(row).(j))
      done
  in
  Array.iteri (fun i r -> if i <> row then eliminate r) t.rows;
  eliminate t.z;
  t.basis.(row) <- col

(* Bland's rule: entering = smallest-index column with negative
   reduced cost; leaving = ratio test, ties by smallest basis
   variable.  Returns `Optimal | `Unbounded. *)
let optimize ?(forbidden = fun _ -> false) t =
  let total = t.total_vars in
  let m = Array.length t.rows in
  let rec iterate () =
    let entering = ref (-1) in
    (let j = ref 0 in
     while !entering = -1 && !j < total do
       if (not (forbidden !j)) && t.z.(!j) < -.eps then entering := !j;
       incr j
     done);
    if !entering = -1 then `Optimal
    else begin
      let col = !entering in
      let row = ref (-1) in
      let best = ref infinity in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if a > eps then begin
          let ratio = t.rows.(i).(total) /. a in
          if
            ratio < !best -. eps
            || (ratio < !best +. eps
               && (!row = -1 || t.basis.(i) < t.basis.(!row)))
          then begin
            best := ratio;
            row := i
          end
        end
      done;
      if !row = -1 then `Unbounded
      else begin
        pivot t ~row:!row ~col;
        iterate ()
      end
    end
  in
  iterate ()

let objective_value t = -.t.z.(t.total_vars)

let solution_of t n =
  let x = Array.make n 0.0 in
  Array.iteri
    (fun i b -> if b < n then x.(b) <- t.rows.(i).(t.total_vars))
    t.basis;
  x

(* After phase 1, drive remaining basic artificials out of the basis
   (or detect the row as redundant). *)
let purge_artificials t artificials =
  let is_artificial = Array.make t.total_vars false in
  List.iter (fun a -> is_artificial.(a) <- true) artificials;
  Array.iteri
    (fun i b ->
      if b >= 0 && b < t.total_vars && is_artificial.(b) then begin
        (* Find a non-artificial column with a nonzero entry. *)
        let col = ref (-1) in
        let j = ref 0 in
        while !col = -1 && !j < t.total_vars do
          if (not is_artificial.(!j)) && Float.abs t.rows.(i).(!j) > eps then
            col := !j;
          incr j
        done;
        match !col with
        | -1 -> () (* redundant row; artificial stays at value 0 *)
        | c -> pivot t ~row:i ~col:c
      end)
    t.basis;
  is_artificial

let minimize p =
  check_problem p;
  let t, artificials = build p in
  match optimize t with
  | `Unbounded ->
    (* Phase-1 objective is bounded below by 0; cannot happen. *)
    assert false
  | `Optimal ->
    if objective_value t < -.eps *. 100.0 then assert false
    else if Float.abs (objective_value t) > 1e-6 then Infeasible
    else begin
      let is_artificial = purge_artificials t artificials in
      (* Install the real objective row (minimise c·x): z.(j) starts
         at c_j, then canonicalise against the basis. *)
      Array.fill t.z 0 (t.total_vars + 1) 0.0;
      Array.blit p.objective 0 t.z 0 p.var_count;
      Array.iteri
        (fun i b ->
          if b >= 0 && Float.abs t.z.(b) > eps then begin
            let f = t.z.(b) in
            for j = 0 to t.total_vars do
              t.z.(j) <- t.z.(j) -. (f *. t.rows.(i).(j))
            done
          end)
        t.basis;
      match optimize ~forbidden:(fun j -> is_artificial.(j)) t with
      | `Unbounded -> Unbounded
      | `Optimal ->
        Optimal
          {
            objective = -.t.z.(t.total_vars);
            solution = solution_of t p.var_count;
          }
    end

let feasible p =
  match minimize { p with objective = Array.make p.var_count 0.0 } with
  | Optimal _ -> true
  | Infeasible -> false
  | Unbounded -> true
