(** Hybrid time/bandwidth objectives (§3.4, closing remark).

    "One such approach is to search for a bandwidth-optimal solution
    subject to the constraint that the time be no more than some
    constant factor of the optimal time, or vice versa."

    Both directions, exactly, on small instances:
    - {!bandwidth_subject_to_time}: minimum bandwidth among schedules
      of length at most [ceil (slack × FOCD-optimum)];
    - {!time_subject_to_bandwidth}: minimum makespan among schedules
      of bandwidth at most [ceil (slack × EOCD-optimum)] — found by
      scanning horizons upward until the bandwidth budget is met.

    Built on {!Search}; inherits its budgets. *)

open Ocd_core

type outcome =
  | Solved of { makespan : int; bandwidth : int; schedule : Schedule.t }
  | Unsatisfiable
  | Budget_exceeded

val bandwidth_subject_to_time :
  ?max_states:int -> slack:float -> Instance.t -> outcome
(** Requires [slack >= 1.0]. *)

val time_subject_to_bandwidth :
  ?max_states:int -> slack:float -> Instance.t -> outcome
(** Requires [slack >= 1.0]. *)
