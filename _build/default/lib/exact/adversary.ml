open Ocd_core
open Ocd_graph

let instance ~distance ~decoys ~wanted =
  if distance < 1 then invalid_arg "Adversary.instance: distance < 1";
  if decoys < 0 then invalid_arg "Adversary.instance: negative decoys";
  if wanted < 0 || wanted > decoys then
    invalid_arg "Adversary.instance: wanted out of range";
  let n = distance + 1 in
  let edges = List.init distance (fun i -> (i, i + 1, 1)) in
  let graph = Digraph.of_edges ~vertex_count:n edges in
  Instance.make ~graph ~token_count:(decoys + 1)
    ~have:[ (0, List.init (decoys + 1) Fun.id) ]
    ~want:[ (distance, [ wanted ]) ]

let optimal_makespan ~distance = distance

let optimal_schedule ~distance ~decoys:_ ~wanted =
  Schedule.of_steps
    (List.init distance (fun i ->
         [ { Move.src = i; dst = i + 1; token = wanted } ]))
