open Ocd_core
open Ocd_prelude
open Ocd_graph

type outcome =
  | Solved of { bandwidth : int; schedule : Schedule.t }
  | Infeasible_at_horizon
  | Budget_exceeded

(* Arc universe: real arcs first, then one self-arc per vertex. *)
type layout = {
  real_arcs : (int * int * int) array;  (* src, dst, capacity *)
  n : int;
  m : int;  (* tokens *)
  horizon : int;  (* τ: real-arc steps are 1..τ, self-arc steps 1..τ+1 *)
}

let layout_of (inst : Instance.t) ~horizon =
  {
    real_arcs =
      Array.of_list
        (List.map
           (fun { Digraph.src; dst; capacity } -> (src, dst, capacity))
           (Digraph.arcs inst.graph));
    n = Instance.vertex_count inst;
    m = inst.token_count;
    horizon;
  }

let arc_total l = Array.length l.real_arcs + l.n

(* Variable ids: steps 1..τ hold all arcs (real then self); step τ+1
   holds only the self arcs, appended at the end. *)
let var_real l ~step ~arc ~token =
  assert (step >= 1 && step <= l.horizon);
  (((step - 1) * arc_total l) + arc) * l.m + token

let var_self l ~step ~vertex ~token =
  if step <= l.horizon then
    (((step - 1) * arc_total l) + Array.length l.real_arcs + vertex) * l.m
    + token
  else begin
    assert (step = l.horizon + 1);
    (l.horizon * arc_total l * l.m) + (vertex * l.m) + token
  end

let variable_count_of l = (l.horizon * arc_total l * l.m) + (l.n * l.m)

let variable_count inst ~horizon =
  variable_count_of (layout_of inst ~horizon)

(* Incoming arcs of u in E' = real in-arcs plus the self arc. *)
let incoming (inst : Instance.t) l u =
  let real = ref [] in
  Array.iteri
    (fun arc (_, dst, _) -> if dst = u then real := arc :: !real)
    l.real_arcs;
  (* Digraph.pred would be faster but indices into [real_arcs] are
     needed; instance sizes here are tiny. *)
  ignore inst;
  !real

let constraints (inst : Instance.t) l =
  let vars = variable_count_of l in
  let acc = ref [] in
  let add coeffs relation rhs =
    acc := { Simplex.coeffs; relation; rhs } :: !acc
  in
  let row () = Array.make vars 0.0 in
  let incoming_of = Array.init l.n (fun u -> incoming inst l u) in
  (* Possession constraints. *)
  let possession ~step ~var_id ~u ~token =
    let coeffs = row () in
    coeffs.(var_id) <- 1.0;
    let rhs = ref 0.0 in
    if step - 1 = 0 then begin
      (* x^0: only self arcs are nonzero, and they are constants. *)
      if Bitset.mem inst.have.(u) token then rhs := 1.0
    end
    else begin
      List.iter
        (fun arc ->
          coeffs.(var_real l ~step:(step - 1) ~arc ~token) <- -1.0)
        incoming_of.(u);
      coeffs.(var_self l ~step:(step - 1) ~vertex:u ~token) <- -1.0
    end;
    add coeffs Simplex.Le !rhs
  in
  for step = 1 to l.horizon do
    Array.iteri
      (fun arc (src, _, _) ->
        for token = 0 to l.m - 1 do
          possession ~step ~var_id:(var_real l ~step ~arc ~token) ~u:src ~token
        done)
      l.real_arcs;
    for vertex = 0 to l.n - 1 do
      for token = 0 to l.m - 1 do
        possession ~step ~var_id:(var_self l ~step ~vertex ~token) ~u:vertex
          ~token
      done
    done
  done;
  (* Final storage step τ+1 for self arcs. *)
  let final = l.horizon + 1 in
  for vertex = 0 to l.n - 1 do
    for token = 0 to l.m - 1 do
      possession ~step:final
        ~var_id:(var_self l ~step:final ~vertex ~token)
        ~u:vertex ~token
    done
  done;
  (* Capacity constraints on real arcs. *)
  for step = 1 to l.horizon do
    Array.iteri
      (fun arc (_, _, cap) ->
        let coeffs = row () in
        for token = 0 to l.m - 1 do
          coeffs.(var_real l ~step ~arc ~token) <- 1.0
        done;
        add coeffs Simplex.Le (float_of_int cap))
      l.real_arcs
  done;
  (* Delivery constraints. *)
  for vertex = 0 to l.n - 1 do
    Bitset.iter
      (fun token ->
        let coeffs = row () in
        coeffs.(var_self l ~step:final ~vertex ~token) <- 1.0;
        add coeffs Simplex.Ge 1.0)
      inst.want.(vertex)
  done;
  List.rev !acc

let objective l =
  let vars = variable_count_of l in
  let c = Array.make vars 0 in
  for step = 1 to l.horizon do
    Array.iteri
      (fun arc _ ->
        for token = 0 to l.m - 1 do
          c.(var_real l ~step ~arc ~token) <- 1
        done)
      l.real_arcs
  done;
  c

let schedule_of_solution (l : layout) solution =
  let steps =
    List.init l.horizon (fun j ->
        let step = j + 1 in
        let moves = ref [] in
        Array.iteri
          (fun arc (src, dst, _) ->
            for token = 0 to l.m - 1 do
              if solution.(var_real l ~step ~arc ~token) then
                moves := { Move.src; dst; token } :: !moves
            done)
          l.real_arcs;
        !moves)
  in
  Schedule.drop_trailing_empty (Schedule.of_steps steps)

let eocd_at_horizon ?max_nodes (inst : Instance.t) ~horizon =
  if horizon < 0 then invalid_arg "Ip_formulation: negative horizon";
  let l = layout_of inst ~horizon in
  match
    Ilp.minimize ?max_nodes ~var_count:(variable_count_of l)
      ~objective:(objective l) ~constraints:(constraints inst l) ()
  with
  | Ilp.Infeasible -> Infeasible_at_horizon
  | Ilp.Budget_exceeded -> Budget_exceeded
  | Ilp.Optimal { objective = bandwidth; solution } ->
    let schedule = schedule_of_solution l solution in
    (match Validate.check_successful inst schedule with
    | Ok () -> Solved { bandwidth; schedule }
    | Error e ->
      invalid_arg
        (Format.asprintf "Ip_formulation: extracted schedule invalid: %a"
           Validate.pp_error e))

let focd ?max_nodes ?(max_horizon = 16) inst =
  let lower =
    if Instance.trivially_satisfied inst then 0
    else max 1 (Bounds.makespan_lower_bound inst)
  in
  let rec scan horizon =
    if horizon > max_horizon then None
    else
      match eocd_at_horizon ?max_nodes inst ~horizon with
      | Solved { schedule; _ } -> Some (horizon, schedule)
      | Infeasible_at_horizon -> scan (horizon + 1)
      | Budget_exceeded -> None
  in
  scan lower
