(** The §3.4 time-indexed integer program.

    Variables [x^i_{(u,v),t} ∈ {0,1}] state that token [t] crosses arc
    [(u,v)] during (paper-)step [i]; the graph is extended with a
    self-arc per vertex whose variables encode storage.  Constraints:

    - possession: [x^i_{(u,v),t} ≤ Σ_{(w,u) ∈ E'} x^{i-1}_{(w,u),t}]
      with [x^0_{(v,v),t} = 1 iff t ∈ h(v)];
    - capacity: [Σ_t x^i_{(u,v),t} ≤ c(u,v)] on real arcs;
    - delivery: [x^{τ+1}_{(v,v),t} ≥ 1] for [t ∈ w(v)].

    The objective minimises the real-arc variable sum — the schedule's
    bandwidth — so solving at horizon [τ] answers EOCD-with-deadline,
    and the smallest feasible [τ] (found by linear search from the
    {!Ocd_core.Bounds.makespan_lower_bound}) answers FOCD.  Solved
    with the in-house {!Simplex} + {!Ilp}; intended for the same small
    instances the paper solves exactly. *)

open Ocd_core

type outcome =
  | Solved of { bandwidth : int; schedule : Schedule.t }
  | Infeasible_at_horizon
  | Budget_exceeded

val eocd_at_horizon :
  ?max_nodes:int -> Instance.t -> horizon:int -> outcome
(** Minimum-bandwidth schedule of length at most [horizon]. *)

val focd :
  ?max_nodes:int -> ?max_horizon:int -> Instance.t -> (int * Schedule.t) option
(** Smallest horizon admitting a successful schedule, with a witness;
    [None] when no horizon up to [max_horizon] (default 16) works or
    the solver budget is exhausted. *)

val variable_count : Instance.t -> horizon:int -> int
(** Size of the generated program (for reporting). *)
