(** The appendix reduction: Dominating Set ≤p FOCD.

    Given an (undirected) graph [G = (V, E)] with [n = |V|] and a
    budget [k], the reduction builds a FOCD instance on [2n + 2]
    vertices [{s, t} ∪ V ∪ V'] and [n - k + 1] tokens
    [{0} ∪ {1, …, n-k}]:

    - [s] holds every token; [t] wants [{1, …, n-k}]; every [v'_i]
      wants [{0}];
    - arcs (all capacity 1): [s → v_i], [v_i → t], [v_i → v'_i], and
      [v_i → v'_j] for each edge [(v_i, v_j) ∈ E].

    Theorem 5: [G] has a dominating set of size ≤ [k] iff the instance
    is solvable in two timesteps.  This module provides the instance
    builder, the constructive direction (a 2-step schedule from a
    dominating set), and a specialised exact 2-step decision procedure
    that exploits the reduction's layered structure (step 1 is an
    assignment of at most one token to each [v_i]; step 2 is then
    checkable directly) — so the equivalence can be verified on graphs
    beyond the generic search solver's reach. *)

open Ocd_core

val vertex_s : int
val vertex_t : int

val relay : int -> int
(** [v_i], 0-based. *)

val receiver : n:int -> int -> int
(** [v'_i]; the layout places receivers after the [n] relays. *)

val instance : Ocd_graph.Digraph.t -> k:int -> Instance.t
(** The FOCD instance for deciding "dominating set of size ≤ k".
    The input digraph is interpreted as undirected (arc in either
    direction = edge).  Requires [0 <= k <= n]. *)

val schedule_of_dominating_set :
  Ocd_graph.Digraph.t -> k:int -> dominating:int list -> Schedule.t
(** The constructive 2-step schedule of Theorem 5's forward direction.
    @raise Invalid_argument if [dominating] is not a dominating set of
    size ≤ [k]. *)

val two_step_solvable : Ocd_graph.Digraph.t -> k:int -> bool
(** Exact decision of "the reduced instance is solvable in 2 steps",
    by exhaustive search over step-1 token assignments with the
    structure-aware step-2 check. *)
