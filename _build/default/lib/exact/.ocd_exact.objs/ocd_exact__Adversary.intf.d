lib/exact/adversary.mli: Instance Ocd_core Schedule
