lib/exact/simplex.ml: Array Float List
