lib/exact/ip_formulation.mli: Instance Ocd_core Schedule
