lib/exact/hybrid.ml: Bounds Float Instance Ocd_core Schedule Search
