lib/exact/hybrid.mli: Instance Ocd_core Schedule
