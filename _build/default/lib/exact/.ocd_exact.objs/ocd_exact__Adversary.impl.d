lib/exact/adversary.ml: Digraph Fun Instance List Move Ocd_core Ocd_graph Schedule
