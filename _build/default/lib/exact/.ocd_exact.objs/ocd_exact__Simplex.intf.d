lib/exact/simplex.mli:
