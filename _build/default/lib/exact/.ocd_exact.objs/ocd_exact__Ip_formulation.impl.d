lib/exact/ip_formulation.ml: Array Bitset Bounds Digraph Format Ilp Instance List Move Ocd_core Ocd_graph Ocd_prelude Schedule Simplex Validate
