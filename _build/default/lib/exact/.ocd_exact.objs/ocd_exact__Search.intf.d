lib/exact/search.mli: Instance Ocd_core Schedule
