lib/exact/search.ml: Array Bitset Digraph Hashtbl Instance List Move Ocd_core Ocd_graph Ocd_prelude Option Pqueue Queue Schedule Sys
