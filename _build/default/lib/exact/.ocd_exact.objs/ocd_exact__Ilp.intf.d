lib/exact/ilp.mli: Simplex
