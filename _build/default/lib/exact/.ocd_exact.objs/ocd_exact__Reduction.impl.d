lib/exact/reduction.ml: Array Digraph Fun Instance List Move Ocd_core Ocd_graph Schedule Sys
