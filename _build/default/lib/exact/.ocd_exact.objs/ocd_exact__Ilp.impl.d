lib/exact/ilp.ml: Array Float List Simplex
