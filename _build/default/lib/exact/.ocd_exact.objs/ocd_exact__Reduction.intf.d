lib/exact/reduction.mli: Instance Ocd_core Ocd_graph Schedule
