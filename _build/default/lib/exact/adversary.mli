(** The Theorem 4 adversary family.

    "Consider the situation of two maximally-separated vertices in
    which one has tokens that the other requires.  If the sender has
    many tokens that the receiver does not want, then simply sending
    out tokens in the hopes they are useful cannot speed up the
    solution beyond waiting to hear knowledge of which tokens are
    needed."

    The family is a bidirectional path of [distance + 1] vertices with
    unit capacities.  The endpoint [0] holds [decoys + 1] tokens; the
    far endpoint wants exactly one of them ([wanted]).  A prescient
    algorithm pipelines the wanted token straight down the path —
    makespan [distance] — while any online algorithm ignorant of
    [wanted] either floods (worst case [distance + decoys] steps at
    capacity 1) or waits [distance] steps for the want to propagate
    back before sending ([2·distance]).  Scaling [decoys] therefore
    defeats any fixed competitive ratio; the bench harness sweeps the
    family to show each heuristic's gap. *)

open Ocd_core

val instance : distance:int -> decoys:int -> wanted:int -> Instance.t
(** Requires [distance >= 1], [decoys >= 0],
    [0 <= wanted <= decoys]. *)

val optimal_makespan : distance:int -> int
(** = [distance]: the prescient pipeline. *)

val optimal_schedule : distance:int -> decoys:int -> wanted:int -> Schedule.t
(** The prescient witness (validated in tests). *)
