open Ocd_core

type outcome =
  | Solved of { makespan : int; bandwidth : int; schedule : Schedule.t }
  | Unsatisfiable
  | Budget_exceeded

let check_slack slack =
  if slack < 1.0 then invalid_arg "Hybrid: slack must be >= 1.0"

let of_solution (s : Search.solution) ~bandwidth =
  Solved
    {
      makespan = Schedule.length s.Search.schedule;
      bandwidth;
      schedule = s.Search.schedule;
    }

let bandwidth_subject_to_time ?max_states ~slack inst =
  check_slack slack;
  match Search.focd ?max_states inst with
  | Search.Unsatisfiable -> Unsatisfiable
  | Search.Budget_exceeded -> Budget_exceeded
  | Search.Solved { objective = opt_time; _ } -> (
    let horizon = int_of_float (Float.ceil (slack *. float_of_int opt_time)) in
    match Search.eocd ?max_states ~horizon inst with
    | Search.Solved s -> of_solution s ~bandwidth:s.Search.objective
    | Search.Unsatisfiable ->
      (* impossible: FOCD's witness fits the horizon *)
      assert false
    | Search.Budget_exceeded -> Budget_exceeded)

let time_subject_to_bandwidth ?max_states ~slack inst =
  check_slack slack;
  match Search.eocd ?max_states inst with
  | Search.Unsatisfiable -> Unsatisfiable
  | Search.Budget_exceeded -> Budget_exceeded
  | Search.Solved { objective = opt_bw; _ } -> (
    let budget = int_of_float (Float.ceil (slack *. float_of_int opt_bw)) in
    (* Scan makespans upward; the first horizon whose bandwidth optimum
       fits the budget is the answer. *)
    let start =
      if Instance.trivially_satisfied inst then 0
      else max 1 (Bounds.makespan_lower_bound inst)
    in
    let rec scan horizon =
      (* EOCD is satisfiable, so some horizon always works. *)
      match Search.eocd ?max_states ~horizon inst with
      | Search.Solved s when s.Search.objective <= budget ->
        of_solution s ~bandwidth:s.Search.objective
      | Search.Solved _ | Search.Unsatisfiable -> scan (horizon + 1)
      | Search.Budget_exceeded -> Budget_exceeded
    in
    scan start)
