(** Exact combinatorial solvers for FOCD and EOCD on small instances
    (§3.2, the "simple algorithm ... to calculate optimal behavior for
    small graphs with few files").

    Both solvers explore the space of *possession states* (the vector
    of per-vertex token sets).  Possession is monotone, so the state
    graph is a DAG.

    - FOCD (minimum makespan): breadth-first search.  Because extra
      deliveries never hurt (possession monotonicity means a superset
      state dominates), only per-arc *maximal* useful move selections
      need to be branched on; when an arc's useful tokens exceed its
      capacity every capacity-sized subset is enumerated.
    - EOCD (minimum bandwidth): uniform-cost search (Dijkstra) whose
      edge cost is the number of moves in the step.  Here non-maximal
      selections matter, so every subset of useful moves is
      enumerated per arc; with [~horizon] the search is layered by
      timestep and minimises bandwidth among schedules of at most that
      many steps.

    Exactness holds because moves that deliver a token its receiver
    already holds can be excluded w.l.o.g. (Theorem 1's cleanup).
    Exploration is budgeted; exceeding the budget yields
    [Budget_exceeded] rather than a wrong answer. *)

open Ocd_core

type 'a result =
  | Solved of 'a
  | Unsatisfiable
  | Budget_exceeded

type solution = { objective : int; schedule : Schedule.t }

val focd : ?max_states:int -> Instance.t -> solution result
(** Minimum number of timesteps; [objective = makespan].
    [max_states] (default 200_000) bounds explored states. *)

val eocd : ?max_states:int -> ?horizon:int -> Instance.t -> solution result
(** Minimum bandwidth, optionally subject to [length <= horizon];
    [objective = bandwidth]. *)
