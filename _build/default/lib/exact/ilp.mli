(** 0/1 integer linear programming by branch-and-bound over LP
    relaxations.

    Minimises an integer-coefficient objective over binary variables
    subject to linear constraints.  Each node solves the LP relaxation
    with {!Simplex} (variables boxed to [\[0,1\]], branching realised
    as equality fixings); nodes are pruned when the relaxation bound,
    rounded up (all our objectives are integral), cannot beat the
    incumbent.  Branching picks the most fractional variable, trying
    the 0 side first (our objectives count moves, so smaller is more
    promising).

    Exact for the small §3.4 programs this repository generates; node
    and pivot budgets guard against accidental blow-ups. *)

type outcome =
  | Optimal of { objective : int; solution : bool array }
  | Infeasible
  | Budget_exceeded

val minimize :
  ?max_nodes:int ->
  var_count:int ->
  objective:int array ->
  constraints:Simplex.constr list ->
  unit ->
  outcome
(** [objective] coefficients must be non-negative integers (ours count
    moves); constraint coefficients are arbitrary floats.
    [max_nodes] defaults to 20_000. *)
