(** Dense two-phase primal simplex.

    This is the LP engine under the §3.4 integer program.  It solves

    {v minimize  c·x  subject to  A x {<=,>=,=} b,  x >= 0 v}

    with the classic tableau method: phase 1 drives artificial
    variables out to find a basic feasible solution, phase 2 optimises
    the real objective.  Bland's smallest-index rule is used
    throughout, so the algorithm cannot cycle.  Suitable for the small
    dense programs the exact OCD solvers generate (hundreds of rows
    and columns); it makes no attempt at sparse or revised-simplex
    efficiency. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : float array;  (** length = variable count *)
  relation : relation;
  rhs : float;
}

type problem = {
  var_count : int;
  objective : float array;  (** minimised; length = [var_count] *)
  constraints : constr list;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

val minimize : problem -> outcome
(** @raise Invalid_argument on dimension mismatches. *)

val feasible : problem -> bool
(** Phase-1 feasibility only. *)
