type outcome =
  | Optimal of { objective : int; solution : bool array }
  | Infeasible
  | Budget_exceeded

exception Out_of_nodes

let integral x = Float.abs (x -. Float.round x) < 1e-6

let minimize ?(max_nodes = 20_000) ~var_count ~objective ~constraints () =
  if Array.length objective <> var_count then
    invalid_arg "Ilp.minimize: objective length";
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Ilp.minimize: negative objective")
    objective;
  let float_objective = Array.map float_of_int objective in
  let unit_row j =
    let row = Array.make var_count 0.0 in
    row.(j) <- 1.0;
    row
  in
  (* Upper bounds x_j <= 1 once; branch fixings are added per node. *)
  let box_constraints =
    List.init var_count (fun j ->
        { Simplex.coeffs = unit_row j; relation = Simplex.Le; rhs = 1.0 })
  in
  let base_constraints = constraints @ box_constraints in
  let nodes = ref 0 in
  let incumbent = ref None in
  let incumbent_objective () =
    match !incumbent with Some (obj, _) -> obj | None -> max_int
  in
  let rec branch fixings =
    incr nodes;
    if !nodes > max_nodes then raise Out_of_nodes;
    let fixing_constraints =
      List.map
        (fun (j, v) ->
          {
            Simplex.coeffs = unit_row j;
            relation = Simplex.Eq;
            rhs = (if v then 1.0 else 0.0);
          })
        fixings
    in
    let problem =
      {
        Simplex.var_count;
        objective = float_objective;
        constraints = base_constraints @ fixing_constraints;
      }
    in
    match Simplex.minimize problem with
    | Simplex.Infeasible -> ()
    | Simplex.Unbounded ->
      (* Impossible: the feasible region is inside the unit box. *)
      assert false
    | Simplex.Optimal { objective = lp_obj; solution } ->
      let bound = int_of_float (Float.ceil (lp_obj -. 1e-6)) in
      if bound < incumbent_objective () then begin
        (* Find the most fractional variable. *)
        let branch_var = ref (-1) in
        let best_frac = ref 0.0 in
        Array.iteri
          (fun j x ->
            if not (integral x) then begin
              let frac = Float.abs (x -. Float.round x) in
              if frac > !best_frac then begin
                best_frac := frac;
                branch_var := j
              end
            end)
          solution;
        if !branch_var = -1 then begin
          (* Integral solution: candidate incumbent. *)
          let rounded = Array.map (fun x -> x > 0.5) solution in
          let value =
            Array.to_list rounded
            |> List.mapi (fun j b -> if b then objective.(j) else 0)
            |> List.fold_left ( + ) 0
          in
          if value < incumbent_objective () then incumbent := Some (value, rounded)
        end
        else begin
          branch ((!branch_var, false) :: fixings);
          branch ((!branch_var, true) :: fixings)
        end
      end
  in
  match branch [] with
  | () -> (
    match !incumbent with
    | Some (objective, solution) -> Optimal { objective; solution }
    | None -> Infeasible)
  | exception Out_of_nodes ->
    (* An incumbent found before the budget ran out is feasible but not
       proven optimal; report the budget failure rather than a wrong
       optimality claim. *)
    Budget_exceeded
