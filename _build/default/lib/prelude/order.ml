let argmin score l =
  List.fold_left
    (fun best x ->
      match best with
      | None -> Some (x, score x)
      | Some (_, s) ->
        let sx = score x in
        if sx < s then Some (x, sx) else best)
    None l
  |> Option.map fst

let argmax score l = argmin (fun x -> -score x) l

let min_score score l =
  List.fold_left
    (fun best x ->
      let sx = score x in
      match best with None -> Some sx | Some s -> Some (min s sx))
    None l

let sort_by score l = List.stable_sort (fun a b -> compare (score a) (score b)) l

let rec take n l =
  if n <= 0 then []
  else match l with [] -> [] | x :: rest -> x :: take (n - 1) rest

let range n = List.init n Fun.id
