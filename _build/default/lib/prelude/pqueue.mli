(** Mutable binary min-heap keyed by integer priorities.

    Used by Dijkstra/Prim-style graph algorithms.  Ties are broken
    arbitrarily.  Stale entries are tolerated: callers following the
    "lazy deletion" idiom should check whether a popped element is still
    relevant. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> priority:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum-priority entry. *)

val peek : 'a t -> (int * 'a) option
