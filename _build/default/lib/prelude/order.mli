(** Selection helpers used throughout the heuristics. *)

val argmin : ('a -> int) -> 'a list -> 'a option
(** First element minimising the score. *)

val argmax : ('a -> int) -> 'a list -> 'a option

val min_score : ('a -> int) -> 'a list -> int option
(** The minimal score itself. *)

val sort_by : ('a -> int) -> 'a list -> 'a list
(** Stable ascending sort by score. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them if shorter). *)

val range : int -> int list
(** [range n] is [\[0; 1; ...; n-1\]]. *)
