lib/prelude/prng.ml: Array Int64 List
