lib/prelude/bitset.mli: Format Prng
