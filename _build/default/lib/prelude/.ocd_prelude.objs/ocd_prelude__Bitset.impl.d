lib/prelude/bitset.ml: Array Format List Prng Sys
