lib/prelude/pqueue.ml: Array
