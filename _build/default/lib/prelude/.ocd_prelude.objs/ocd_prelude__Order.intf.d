lib/prelude/order.mli:
