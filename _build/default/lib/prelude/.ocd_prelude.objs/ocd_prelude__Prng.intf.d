lib/prelude/prng.mli:
