lib/prelude/stats.ml: Array Float Format List
