lib/prelude/pqueue.mli:
