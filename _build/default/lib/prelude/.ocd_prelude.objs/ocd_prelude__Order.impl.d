lib/prelude/order.ml: Fun List Option
