(* Dinic with arc-array representation: arcs stored in pairs, arc i's
   residual twin is i lxor 1. *)

type t = {
  node_count : int;
  mutable heads : int array;     (* head of adjacency list per node *)
  mutable nexts : int array;     (* next arc in list *)
  mutable dsts : int array;
  mutable caps : int array;      (* residual capacities *)
  mutable arc_count : int;
  mutable original : (int * int * int) list;  (* (arc_id, src, dst), reversed *)
}

let create ~node_count =
  {
    node_count;
    heads = Array.make node_count (-1);
    nexts = Array.make 16 (-1);
    dsts = Array.make 16 0;
    caps = Array.make 16 0;
    arc_count = 0;
    original = [];
  }

let ensure_room t =
  let cap = Array.length t.nexts in
  if t.arc_count + 2 > cap then begin
    let grow a fill =
      let b = Array.make (2 * cap) fill in
      Array.blit a 0 b 0 cap;
      b
    in
    t.nexts <- grow t.nexts (-1);
    t.dsts <- grow t.dsts 0;
    t.caps <- grow t.caps 0
  end

let push_arc t ~src ~dst ~capacity =
  let id = t.arc_count in
  t.nexts.(id) <- t.heads.(src);
  t.dsts.(id) <- dst;
  t.caps.(id) <- capacity;
  t.heads.(src) <- id;
  t.arc_count <- id + 1;
  id

let add_edge t ~src ~dst ~capacity =
  if src < 0 || src >= t.node_count || dst < 0 || dst >= t.node_count then
    invalid_arg "Maxflow.add_edge: node out of range";
  if capacity < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  ensure_room t;
  let id = push_arc t ~src ~dst ~capacity in
  ignore (push_arc t ~src:dst ~dst:src ~capacity:0);
  t.original <- (id, src, dst) :: t.original

(* BFS level graph. *)
let levels t ~source ~sink =
  let level = Array.make t.node_count (-1) in
  let queue = Queue.create () in
  level.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let arc = ref t.heads.(u) in
    while !arc >= 0 do
      let v = t.dsts.(!arc) in
      if t.caps.(!arc) > 0 && level.(v) = -1 then begin
        level.(v) <- level.(u) + 1;
        Queue.add v queue
      end;
      arc := t.nexts.(!arc)
    done
  done;
  if level.(sink) = -1 then None else Some level

(* DFS blocking flow with iteration pointers. *)
let blocking_flow t ~source ~sink ~level ~cursor =
  let rec dfs u pushed =
    if u = sink then pushed
    else begin
      let result = ref 0 in
      while !result = 0 && cursor.(u) >= 0 do
        let arc = cursor.(u) in
        let v = t.dsts.(arc) in
        if t.caps.(arc) > 0 && level.(v) = level.(u) + 1 then begin
          let sent = dfs v (min pushed t.caps.(arc)) in
          if sent > 0 then begin
            t.caps.(arc) <- t.caps.(arc) - sent;
            t.caps.(arc lxor 1) <- t.caps.(arc lxor 1) + sent;
            result := sent
          end
          else cursor.(u) <- t.nexts.(arc)
        end
        else cursor.(u) <- t.nexts.(arc)
      done;
      !result
    end
  in
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let sent = dfs source max_int in
    if sent = 0 then continue := false else total := !total + sent
  done;
  !total

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    match levels t ~source ~sink with
    | None -> continue := false
    | Some level ->
      let cursor = Array.copy t.heads in
      total := !total + blocking_flow t ~source ~sink ~level ~cursor
  done;
  !total

let flow_on_edges t =
  List.rev_map
    (fun (id, src, dst) ->
      (* flow = residual capacity accumulated on the twin *)
      (src, dst, t.caps.(id lxor 1)))
    t.original
  |> List.filter (fun (_, _, f) -> f > 0)
