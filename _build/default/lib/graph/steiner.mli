(** Steiner-tree heuristics for the EOCD bounds of §3.3.

    The paper observes that distributing one token with minimum
    bandwidth is exactly a directed Steiner tree problem with unit-cost
    arcs from the token's sources to the vertices that want it (sources
    merged through 0-cost arcs).  Computing the optimum is NP-complete,
    so we provide the classical Takahashi–Matsuyama shortest-path
    heuristic, which is a 2-approximation on metric instances and works
    well on the sparse evaluation graphs.

    Returned trees are arc sets oriented away from the source set. *)

type t = {
  arcs : (Digraph.vertex * Digraph.vertex) list;
      (** Tree arcs, each counted once; bandwidth cost = length. *)
  terminals : Digraph.vertex list;
  covered : bool array;
      (** Indexed by vertex; true at terminals that were reached (always
          true for terminals already in the source set). *)
}

val takahashi_matsuyama :
  Digraph.t ->
  sources:Digraph.vertex list ->
  terminals:Digraph.vertex list ->
  t
(** Grows a tree from the (merged) source set, repeatedly attaching the
    nearest uncovered terminal along a shortest hop path.  Terminals
    unreachable from every source are left uncovered.
    @raise Invalid_argument if [sources] is empty. *)

val cost : t -> int
(** Number of arcs = unit-cost bandwidth of the tree. *)

val covers_all : t -> bool
(** True when every terminal was reached. *)
