open Ocd_prelude

type tree = {
  root : Digraph.vertex;
  parent : int array;
  children : Digraph.vertex list array;
}

let prim g ~cost ~root =
  let n = Digraph.vertex_count g in
  let in_tree = Array.make n false in
  let parent = Array.make n (-1) in
  let best = Array.make n max_int in
  let via = Array.make n (-1) in
  let heap = Pqueue.create () in
  best.(root) <- 0;
  Pqueue.push heap ~priority:0 root;
  let relax_from u =
    let relax v =
      if not in_tree.(v) then begin
        let c = cost u v in
        if c < 0 then invalid_arg "Mst.prim: negative cost";
        if c < best.(v) then begin
          best.(v) <- c;
          via.(v) <- u;
          Pqueue.push heap ~priority:c v
        end
      end
    in
    (* Undirected view: both arc directions connect u and v. *)
    List.iter relax (Digraph.neighbors g u)
  in
  let rec drain () =
    match Pqueue.pop heap with
    | None -> ()
    | Some (c, u) ->
      if not in_tree.(u) && c = best.(u) then begin
        in_tree.(u) <- true;
        parent.(u) <- via.(u);
        relax_from u
      end;
      drain ()
  in
  drain ();
  let children = Array.make n [] in
  Array.iteri
    (fun v p -> if p >= 0 then children.(p) <- v :: children.(p))
    parent;
  { root; parent; children }

let total_cost t ~cost =
  let acc = ref 0 in
  Array.iteri (fun v p -> if p >= 0 then acc := !acc + cost p v) t.parent;
  !acc

let depth t =
  let n = Array.length t.parent in
  let d = Array.make n (-1) in
  d.(t.root) <- 0;
  let queue = Queue.create () in
  Queue.add t.root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        d.(v) <- d.(u) + 1;
        Queue.add v queue)
      t.children.(u)
  done;
  d
