(** Shortest paths, eccentricities, diameter and hop-radius closures.

    In the OCD model a token traverses one arc per timestep regardless
    of capacity, so the natural metric for *time* is hop count; all
    distance functions here default to unit arc costs.  A general
    Dijkstra over a caller-supplied cost function is provided for
    baselines that weight arcs differently (e.g. inverse capacity). *)

val hop_distances : Digraph.t -> Digraph.vertex -> int array
(** BFS hop distance from a source; [-1] if unreachable. *)

val all_pairs_hops : Digraph.t -> int array array
(** [all_pairs_hops g].(u).(v) is the hop distance u -> v; [-1] if
    unreachable.  O(n·(n+m)). *)

val dijkstra :
  Digraph.t ->
  cost:(Digraph.vertex -> Digraph.vertex -> int) ->
  Digraph.vertex ->
  int array * int array
(** [dijkstra g ~cost src] returns [(dist, parent)] where [dist.(v)] is
    the least total cost of a path [src -> v] ([max_int] if
    unreachable) and [parent.(v)] is the predecessor on one such path
    ([-1] for the source and unreachable vertices).  [cost u v] must be
    non-negative for every arc [(u, v)]. *)

val shortest_path :
  Digraph.t ->
  cost:(Digraph.vertex -> Digraph.vertex -> int) ->
  Digraph.vertex ->
  Digraph.vertex ->
  Digraph.vertex list option
(** Vertex sequence from source to destination inclusive, or [None]. *)

val eccentricity : Digraph.t -> Digraph.vertex -> int
(** Max hop distance from the vertex to any reachable vertex. *)

val diameter : Digraph.t -> int
(** Max finite hop distance over all ordered pairs.  0 for graphs with
    fewer than two vertices. *)

val closure : Digraph.t -> Digraph.vertex -> radius:int -> Digraph.vertex list
(** Vertices [u] with hop distance [u -> v] at most [radius] — i.e. the
    vertices whose tokens could reach [v] within [radius] timesteps.
    This is the closure used by the §5.1 remaining-moves bound; note
    the *incoming* direction. *)
