type vertex = int

type arc = { src : vertex; dst : vertex; capacity : int }

type t = {
  vertex_count : int;
  arc_count : int;
  succ : (vertex * int) array array;
  pred : (vertex * int) array array;
}

let vertex_count g = g.vertex_count
let arc_count g = g.arc_count

let of_arcs ~vertex_count arcs =
  if vertex_count < 0 then invalid_arg "Digraph.of_arcs: negative vertex count";
  let check { src; dst; capacity } =
    if src < 0 || src >= vertex_count || dst < 0 || dst >= vertex_count then
      invalid_arg "Digraph.of_arcs: endpoint out of range";
    if src = dst then invalid_arg "Digraph.of_arcs: self-loop";
    if capacity <= 0 then invalid_arg "Digraph.of_arcs: non-positive capacity"
  in
  List.iter check arcs;
  (* Merge duplicates by summing capacities through per-source hashtables. *)
  let tables = Array.init vertex_count (fun _ -> Hashtbl.create 4) in
  let add { src; dst; capacity } =
    let table = tables.(src) in
    let existing = Option.value (Hashtbl.find_opt table dst) ~default:0 in
    Hashtbl.replace table dst (existing + capacity)
  in
  List.iter add arcs;
  let sorted_bindings table =
    Hashtbl.fold (fun dst c acc -> (dst, c) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> Array.of_list
  in
  let succ = Array.map sorted_bindings tables in
  let pred_lists = Array.make vertex_count [] in
  Array.iteri
    (fun src row ->
      Array.iter (fun (dst, c) -> pred_lists.(dst) <- (src, c) :: pred_lists.(dst)) row)
    succ;
  let pred =
    Array.map
      (fun l -> Array.of_list (List.sort (fun (a, _) (b, _) -> compare a b) l))
      pred_lists
  in
  let arc_count = Array.fold_left (fun acc row -> acc + Array.length row) 0 succ in
  { vertex_count; arc_count; succ; pred }

let of_edges ~vertex_count edges =
  let arcs =
    List.concat_map
      (fun (u, v, c) ->
        [ { src = u; dst = v; capacity = c }; { src = v; dst = u; capacity = c } ])
      edges
  in
  of_arcs ~vertex_count arcs

let succ g v = g.succ.(v)
let pred g v = g.pred.(v)

let capacity g u v =
  let row = g.succ.(u) in
  let rec go i =
    if i >= Array.length row then 0
    else
      let dst, c = row.(i) in
      if dst = v then c else if dst > v then 0 else go (i + 1)
  in
  go 0

let mem_arc g u v = capacity g u v > 0

let out_degree g v = Array.length g.succ.(v)
let in_degree g v = Array.length g.pred.(v)

let sum_capacities row = Array.fold_left (fun acc (_, c) -> acc + c) 0 row

let in_capacity g v = sum_capacities g.pred.(v)
let out_capacity g v = sum_capacities g.succ.(v)

let arcs g =
  let acc = ref [] in
  for src = g.vertex_count - 1 downto 0 do
    let row = g.succ.(src) in
    for i = Array.length row - 1 downto 0 do
      let dst, capacity = row.(i) in
      acc := { src; dst; capacity } :: !acc
    done
  done;
  !acc

let neighbors g v =
  let seen = Hashtbl.create 8 in
  let collect (u, _) = if not (Hashtbl.mem seen u) then Hashtbl.add seen u () in
  Array.iter collect g.succ.(v);
  Array.iter collect g.pred.(v);
  Hashtbl.fold (fun u () acc -> u :: acc) seen [] |> List.sort compare

let reverse g =
  {
    vertex_count = g.vertex_count;
    arc_count = g.arc_count;
    succ = g.pred;
    pred = g.succ;
  }

let vertices g = List.init g.vertex_count Fun.id

let pp ppf g =
  Format.fprintf ppf "digraph(n=%d, arcs=%d)" g.vertex_count g.arc_count;
  List.iter
    (fun { src; dst; capacity } ->
      Format.fprintf ppf "@ %d->%d[%d]" src dst capacity)
    (arcs g)
