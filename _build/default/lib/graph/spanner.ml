let undirected_edges g =
  List.filter_map
    (fun { Digraph.src; dst; _ } -> if src < dst then Some (src, dst) else None)
    (Digraph.arcs g)

(* Bounded-depth BFS in the growing spanner, over an adjacency table we
   maintain incrementally. *)
let distance_within adjacency n ~limit src dst =
  if src = dst then Some 0
  else begin
    let dist = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(src) <- 0;
    Queue.add src queue;
    let result = ref None in
    while !result = None && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      if dist.(u) < limit then
        List.iter
          (fun v ->
            if dist.(v) = -1 then begin
              dist.(v) <- dist.(u) + 1;
              if v = dst then result := Some dist.(v) else Queue.add v queue
            end)
          adjacency.(u)
    done;
    !result
  end

let greedy g ~stretch =
  if stretch < 1 then invalid_arg "Spanner.greedy: stretch < 1";
  let n = Digraph.vertex_count g in
  let adjacency = Array.make n [] in
  let kept = ref [] in
  let consider (u, v) =
    let keep =
      match distance_within adjacency n ~limit:stretch u v with
      | Some d -> d > stretch
      | None -> true
    in
    if keep then begin
      adjacency.(u) <- v :: adjacency.(u);
      adjacency.(v) <- u :: adjacency.(v);
      kept := (u, v) :: !kept
    end
  in
  List.iter consider (undirected_edges g);
  List.rev !kept

let subgraph g edges =
  let cap u v = max (Digraph.capacity g u v) (Digraph.capacity g v u) in
  Digraph.of_edges ~vertex_count:(Digraph.vertex_count g)
    (List.map (fun (u, v) -> (u, v, max 1 (cap u v))) edges)

let stretch_of original spanner =
  let n = Digraph.vertex_count original in
  let worst = ref 1.0 in
  for u = 0 to n - 1 do
    let d0 = Traversal.bfs_levels original u in
    let d1 = Traversal.bfs_levels spanner u in
    for v = 0 to n - 1 do
      if v <> u && d0.(v) > 0 then
        if d1.(v) < 0 then worst := infinity
        else
          worst := Float.max !worst (float_of_int d1.(v) /. float_of_int d0.(v))
    done
  done;
  !worst
