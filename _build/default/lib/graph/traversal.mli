(** Breadth-first and depth-first traversal over {!Digraph}. *)

val bfs_order : Digraph.t -> Digraph.vertex -> Digraph.vertex list
(** Vertices reachable from the root, in BFS order (root first). *)

val bfs_levels : Digraph.t -> Digraph.vertex -> int array
(** Hop distance from the root along directed arcs; [-1] when
    unreachable. *)

val bfs_levels_multi : Digraph.t -> Digraph.vertex list -> int array
(** Multi-source BFS: distance to the nearest of the given roots. *)

val dfs_postorder : Digraph.t -> Digraph.vertex list
(** Postorder over the whole graph (all roots, ascending ids). *)

val reachable : Digraph.t -> Digraph.vertex -> bool array
(** Reachability from a root along directed arcs. *)
