(** Dominating sets.

    The appendix of the paper proves FOCD NP-hard by reduction from
    Dominating Set; this module provides both the exact solver used to
    validate that reduction on small graphs and a greedy
    (ln n)-approximation for larger demonstrations.

    Domination is taken over the undirected view of the digraph: a set
    [D] dominates when every vertex is in [D] or adjacent to a member
    of [D]. *)

val dominates : Digraph.t -> Digraph.vertex list -> bool

val minimum : Digraph.t -> Digraph.vertex list
(** Exact minimum dominating set by cardinality-ordered subset search.
    Exponential; intended for [n <= ~20]. *)

val exists_of_size : Digraph.t -> int -> bool
(** [exists_of_size g k]: is there a dominating set of size <= k? *)

val greedy : Digraph.t -> Digraph.vertex list
(** Classical greedy: repeatedly pick the vertex covering the most
    uncovered vertices.  H(n)-approximate. *)
