(** Maximum flow (Dinic's algorithm).

    The paper's related-work section situates OCD against network
    flow: token distribution violates flow conservation (tokens are
    stored and duplicated), but several *subproblems* are genuine flow
    problems.  This module backs two of them:

    - the exact single-timestep delivery check (can every vertex's
      deficit be covered in one step?) is a bipartite assignment of
      (token, receiver) demands to supplying arcs — solved as max-flow
      by {!Ocd_core.Bounds} (see [one_step_exact]);
    - capacity-based upper bounds on per-step intake.

    The implementation is a standard Dinic over an explicit residual
    arc store: O(V²E) in general and O(E√V) on unit-capacity bipartite
    graphs, far beyond what the tiny per-step networks here need. *)

type t
(** A flow network under construction / after solving. *)

val create : node_count:int -> t

val add_edge : t -> src:int -> dst:int -> capacity:int -> unit
(** Adds a directed edge (and its residual twin).  Parallel edges are
    allowed. *)

val max_flow : t -> source:int -> sink:int -> int
(** Computes the maximum flow; may be called once per network. *)

val flow_on_edges : t -> (int * int * int) list
(** After {!max_flow}: the positive flows as [(src, dst, flow)],
    in insertion order of {!add_edge} (residual twins excluded). *)
