(** Greedy k-spanners.

    Narada (related work, §2) builds its mesh as a k-spanner: a
    subgraph in which every pairwise distance is at most [k] times the
    distance in the full graph.  The classical greedy algorithm
    (Althöfer et al. 1993) scans edges in ascending cost and keeps an
    edge only if the current spanner's distance between its endpoints
    exceeds [k] times its cost.  We provide it over the undirected view
    with unit costs, returning the kept edges. *)

val greedy :
  Digraph.t -> stretch:int -> (Digraph.vertex * Digraph.vertex) list
(** Kept undirected edges [(u, v)] with [u < v].
    @raise Invalid_argument when [stretch < 1]. *)

val subgraph : Digraph.t -> (Digraph.vertex * Digraph.vertex) list -> Digraph.t
(** Rebuilds a digraph from kept undirected edges, preserving the
    original capacities in both directions (the max of the two arc
    capacities is used when they differ). *)

val stretch_of : Digraph.t -> Digraph.t -> float
(** [stretch_of original spanner]: max over connected pairs of
    (spanner hop distance / original hop distance); [infinity] if the
    spanner disconnects a previously connected pair. *)
