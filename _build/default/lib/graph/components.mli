(** Connectivity structure: strongly connected components (Tarjan) and
    weak connectivity.  The evaluation topologies must be strongly
    connected for flooding heuristics to terminate; the topology layer
    uses these functions to verify or repair generated graphs. *)

val strongly_connected_components : Digraph.t -> Digraph.vertex list list
(** Components in reverse topological order of the condensation. *)

val component_ids : Digraph.t -> int array * int
(** [(ids, count)]: [ids.(v)] is the SCC index of [v]. *)

val is_strongly_connected : Digraph.t -> bool

val weakly_connected_components : Digraph.t -> Digraph.vertex list list

val is_weakly_connected : Digraph.t -> bool
