(** k edge-disjoint spanning trees rooted at a source.

    SplitStream and Young et al. (related work, §2) distribute content
    over a forest of edge-disjoint trees so that no single overlay link
    carries every stripe.  This module greedily extracts up to [k]
    arc-disjoint out-trees rooted at a given source: each round runs a
    BFS that may only use arcs unused by previous trees.  The greedy
    extraction is not guaranteed to reach Edmonds' arboricity bound but
    is the standard practical construction. *)

type forest = Mst.tree list

val extract : Digraph.t -> root:Digraph.vertex -> k:int -> forest
(** Up to [k] arc-disjoint spanning trees of the vertices reachable
    from [root]; stops early when a round cannot reach every vertex
    that the first tree reached. *)

val arc_disjoint : forest -> bool
(** Checks the defining property (used by tests). *)
