lib/graph/spanner.ml: Array Digraph Float List Queue Traversal
