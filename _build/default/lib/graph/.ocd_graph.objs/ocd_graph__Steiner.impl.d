lib/graph/steiner.ml: Array Digraph List Traversal
