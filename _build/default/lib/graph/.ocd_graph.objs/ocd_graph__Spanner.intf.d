lib/graph/spanner.mli: Digraph
