lib/graph/maxflow.ml: Array List Queue
