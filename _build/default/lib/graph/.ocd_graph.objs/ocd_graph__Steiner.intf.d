lib/graph/steiner.mli: Digraph
