lib/graph/dominating.ml: Array Bitset Digraph List Ocd_prelude Option Order
