lib/graph/traversal.mli: Digraph
