lib/graph/maxflow.mli:
