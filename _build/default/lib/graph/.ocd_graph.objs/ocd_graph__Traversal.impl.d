lib/graph/traversal.ml: Array Digraph List Queue Stack
