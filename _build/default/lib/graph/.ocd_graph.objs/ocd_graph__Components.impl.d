lib/graph/components.ml: Array Digraph List Queue Stack
