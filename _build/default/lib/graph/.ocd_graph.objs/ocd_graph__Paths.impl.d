lib/graph/paths.ml: Array Digraph List Ocd_prelude Pqueue Traversal
