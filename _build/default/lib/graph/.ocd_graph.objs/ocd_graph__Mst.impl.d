lib/graph/mst.ml: Array Digraph List Ocd_prelude Pqueue Queue
