lib/graph/mst.mli: Digraph
