lib/graph/digraph.ml: Array Format Fun Hashtbl List Option
