lib/graph/dominating.mli: Digraph
