lib/graph/disjoint_trees.ml: Array Digraph Hashtbl List Mst Queue Traversal
