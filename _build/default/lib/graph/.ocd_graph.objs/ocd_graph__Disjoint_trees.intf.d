lib/graph/disjoint_trees.mli: Digraph Mst
