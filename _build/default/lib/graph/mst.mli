(** Minimum spanning trees (Prim) over the undirected view of a
    digraph.

    The cost of an undirected edge [{u, v}] is supplied by the caller;
    baselines typically use hop cost 1 (minimising total arcs) or an
    inverse-capacity cost (preferring fat links, as Overcast does). *)

type tree = {
  root : Digraph.vertex;
  parent : int array;  (** [-1] for the root; spans reachable vertices *)
  children : Digraph.vertex list array;
}

val prim :
  Digraph.t ->
  cost:(Digraph.vertex -> Digraph.vertex -> int) ->
  root:Digraph.vertex ->
  tree
(** Spanning tree of the weakly-reachable component of [root] using
    symmetric costs; vertices not connected to [root] have
    [parent = -1] and no children entry. *)

val total_cost :
  tree -> cost:(Digraph.vertex -> Digraph.vertex -> int) -> int

val depth : tree -> int array
(** Hop depth of each vertex in the tree; [-1] when outside it. *)
