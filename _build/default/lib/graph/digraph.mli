(** Simple, capacitated directed graphs with vertices [0 .. n-1].

    This is the substrate for the OCD model of §3.1 of the paper: a
    simple weighted directed graph [G = (V, E)] whose arc weights are
    interpreted as per-timestep token capacities.  The representation is
    immutable after construction (adjacency arrays), which lets the
    simulator share one graph across many runs.

    Multi-arcs are merged at build time by summing capacities, exactly
    as the paper prescribes ("multi-arcs can be represented as a single
    arc whose capacity is the sum").  Self-loops are rejected: the model
    gives every vertex implicit infinite-capacity storage. *)

type vertex = int

type arc = { src : vertex; dst : vertex; capacity : int }

type t

val vertex_count : t -> int
val arc_count : t -> int

val of_arcs : vertex_count:int -> arc list -> t
(** Builds a graph; duplicate arcs are merged (capacities summed),
    self-loops raise [Invalid_argument], as do non-positive capacities
    and out-of-range endpoints. *)

val of_edges : vertex_count:int -> (vertex * vertex * int) list -> t
(** [of_edges ~vertex_count edges] treats each [(u, v, c)] as an
    *undirected* edge: arcs [u -> v] and [v -> u], both of capacity [c],
    are added.  This is how the paper's evaluation graphs are built. *)

val capacity : t -> vertex -> vertex -> int
(** 0 when the arc is absent. *)

val mem_arc : t -> vertex -> vertex -> bool

val succ : t -> vertex -> (vertex * int) array
(** Out-neighbours with arc capacities.  The returned array is owned by
    the graph; callers must not mutate it. *)

val pred : t -> vertex -> (vertex * int) array
(** In-neighbours with arc capacities. *)

val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int

val in_capacity : t -> vertex -> int
(** Sum of capacities of incoming arcs (the per-step download ceiling of
    a vertex, used by the §5.1 remaining-moves bound). *)

val out_capacity : t -> vertex -> int

val arcs : t -> arc list
(** All arcs, grouped by source, ascending destinations. *)

val neighbors : t -> vertex -> vertex list
(** Union of in- and out-neighbours (the vertices knowledge can be
    exchanged with under the LOCD model, where "information travels
    bidirectionally along an edge"). *)

val reverse : t -> t
(** Graph with every arc flipped. *)

val vertices : t -> vertex list

val pp : Format.formatter -> t -> unit
