lib/underlay/underlay.ml: Array Bitset Digraph Float Format Hashtbl Instance List Metrics Move Ocd_core Ocd_engine Ocd_graph Ocd_prelude Ocd_topology Option Paths Prng Schedule Validate
