lib/underlay/underlay.mli: Instance Metrics Ocd_core Ocd_engine Ocd_graph Ocd_prelude Ocd_topology Schedule
