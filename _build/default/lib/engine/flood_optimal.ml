open Ocd_core
let strategy ~planner ~name =
  let make inst _rng =
    let delay = Knowledge.steps_to_complete inst in
    let plan = planner inst in
    (match Validate.check_successful inst plan with
    | Ok () -> ()
    | Error e ->
      invalid_arg
        (Format.asprintf "Flood_optimal: planner schedule invalid: %a"
           Validate.pp_error e));
    let plan_steps = Array.of_list (Schedule.steps plan) in
    fun (ctx : Strategy.context) ->
      let i = ctx.step - delay in
      if i < 0 || i >= Array.length plan_steps then [] else plan_steps.(i)
  in
  { Strategy.name; make }
