open Ocd_core
open Ocd_prelude

type context = {
  instance : Instance.t;
  have : Bitset.t array;
  step : int;
  rng : Prng.t;
}

type decide = context -> Move.t list

type t = {
  name : string;
  make : Instance.t -> Prng.t -> decide;
}

let stateless ~name decide = { name; make = (fun _ _ -> decide) }
