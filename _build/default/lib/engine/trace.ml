open Ocd_core
open Ocd_prelude

type snapshot = {
  step : int;
  remaining_deficit : int;
  satisfied_vertices : int;
  moves_so_far : int;
}

let timeline (inst : Instance.t) schedule =
  let possessions = Validate.possessions inst schedule in
  let steps = Array.of_list (Schedule.steps schedule) in
  let n = Instance.vertex_count inst in
  let snapshot_at i have =
    let deficit = ref 0 and satisfied = ref 0 in
    for v = 0 to n - 1 do
      let missing = Bitset.cardinal (Bitset.diff inst.want.(v) have.(v)) in
      deficit := !deficit + missing;
      if missing = 0 then incr satisfied
    done;
    let moves = ref 0 in
    for j = 0 to i - 1 do
      moves := !moves + List.length steps.(j)
    done;
    {
      step = i;
      remaining_deficit = !deficit;
      satisfied_vertices = !satisfied;
      moves_so_far = !moves;
    }
  in
  List.init (Array.length possessions) (fun i -> snapshot_at i possessions.(i))

let completion_cdf inst schedule =
  let n = max 1 (Instance.vertex_count inst) in
  List.map
    (fun s -> (s.step, float_of_int s.satisfied_vertices /. float_of_int n))
    (timeline inst schedule)

let render ?(width = 30) inst schedule =
  let line = Buffer.create 256 in
  let snapshots = timeline inst schedule in
  let initial =
    match snapshots with s :: _ -> max 1 s.remaining_deficit | [] -> 1
  in
  List.iter
    (fun s ->
      let done_frac =
        1.0 -. (float_of_int s.remaining_deficit /. float_of_int initial)
      in
      let filled =
        max 0 (min width (int_of_float (done_frac *. float_of_int width)))
      in
      Buffer.add_string line
        (Printf.sprintf "step %3d |%s%s| %3.0f%% %d left\n" s.step
           (String.make filled '#')
           (String.make (width - filled) '.')
           (100.0 *. done_frac) s.remaining_deficit))
    snapshots;
  Buffer.contents line
