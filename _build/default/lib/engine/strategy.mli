(** First-class distribution strategies.

    A strategy is a name plus a factory: given the instance and a
    private random stream, the factory returns the per-timestep
    decision function, closing over whatever mutable state the
    strategy needs (round-robin cursors, caches of static graph
    data, ...).

    The decision function receives the true current possession state.
    *Online* strategies (§4/§5.1) must restrict themselves to the
    knowledge their model grants — e.g. round-robin may only look at
    its own sets, the random heuristic additionally at its neighbours'
    possession; each heuristic documents its knowledge model in its
    own interface.  The engine cannot enforce epistemic discipline
    (that is what {!Knowledge} models explicitly, for the LOCD
    analysis); it does enforce move validity. *)

open Ocd_core
open Ocd_prelude

type context = {
  instance : Instance.t;
  have : Bitset.t array;
      (** possession at the start of the current step; read-only *)
  step : int;
  rng : Prng.t;
}

type decide = context -> Move.t list

type t = {
  name : string;
  make : Instance.t -> Prng.t -> decide;
}

val stateless : name:string -> decide -> t
(** Wraps a decision function that needs no per-run state. *)
