open Ocd_core
open Ocd_prelude
open Ocd_graph

type t = {
  instance : Instance.t;
  known : Bitset.t array;
      (** [known.(v)] = set of vertices whose initial state [v] knows *)
  neighbor_lists : int list array;
}

let create (inst : Instance.t) =
  let n = Instance.vertex_count inst in
  {
    instance = inst;
    known = Array.init n (fun v -> Bitset.singleton n v);
    neighbor_lists =
      Array.init n (fun v -> Digraph.neighbors inst.graph v);
  }

let step t =
  (* Synchronous round: next(v) = known(v) ∪ ⋃_{u ~ v} known(u),
     computed against the pre-round snapshot. *)
  let snapshot = Array.map Bitset.copy t.known in
  Array.iteri
    (fun v neighbors ->
      List.iter (fun u -> Bitset.union_into t.known.(v) snapshot.(u)) neighbors)
    t.neighbor_lists

let knows t ~viewer ~subject = Bitset.mem t.known.(viewer) subject

let vertex_complete t v =
  Bitset.cardinal t.known.(v) = Instance.vertex_count t.instance

let complete t =
  let n = Instance.vertex_count t.instance in
  let rec go v = v >= n || (vertex_complete t v && go (v + 1)) in
  go 0

let steps_to_complete inst =
  if not (Components.is_weakly_connected (inst : Instance.t).graph) then
    invalid_arg "Knowledge.steps_to_complete: graph not weakly connected";
  let t = create inst in
  let rec go i =
    if complete t then i
    else begin
      step t;
      go (i + 1)
    end
  in
  go 0

let known_have t ~viewer ~subject =
  if knows t ~viewer ~subject then
    Some (Bitset.copy t.instance.Instance.have.(subject))
  else None
