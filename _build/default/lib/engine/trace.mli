(** Post-hoc run inspection: per-step progress timelines and
    completion CDFs, reconstructed from a schedule.

    These are the quantities a practitioner plots when debugging a
    distribution system: how the aggregate deficit drains over time,
    when each vertex finishes, and where the long tail is. *)

open Ocd_core

type snapshot = {
  step : int;                 (** state *after* this many steps *)
  remaining_deficit : int;    (** Σ_v |w(v) \ p(v)| *)
  satisfied_vertices : int;   (** vertices with all wants met *)
  moves_so_far : int;
}

val timeline : Instance.t -> Schedule.t -> snapshot list
(** One snapshot per step boundary, from step 0 (initial state) to the
    schedule's end. *)

val completion_cdf : Instance.t -> Schedule.t -> (int * float) list
(** [(step, fraction)] pairs: the fraction of vertices satisfied by
    the end of each step (all vertices counted, including those
    satisfied from the start). *)

val render : ?width:int -> Instance.t -> Schedule.t -> string
(** An ASCII progress bar per step — deficit drain at a glance:
    {v step  3 |#############............| 52% 1043 left v} *)
