(** The §4.2 diameter-additive online algorithm.

    "It is possible for an on-line algorithm to always perform within
    an additive factor of the diameter of the graph [...]: with this
    many steps at the start of computation, full information about the
    state of the graph can be propagated to each vertex.  Armed with
    this knowledge, each vertex can compute an optimal solution for
    the entire graph (deterministically), then follow this schedule."

    The strategy spends {!Knowledge.steps_to_complete} silent
    timesteps flooding state (control traffic, which the OCD model
    does not charge against token bandwidth), then deterministically
    replays the schedule produced by the supplied offline [planner].
    With an exact planner (small instances), the resulting makespan is
    at most [OPT + knowledge_delay]; with a heuristic planner the same
    additive structure holds relative to the planner's makespan. *)

open Ocd_core
val strategy :
  planner:(Instance.t -> Schedule.t) -> name:string -> Strategy.t
(** @raise Invalid_argument at run time (factory application) if the
    planner's schedule fails validation, so errors surface before any
    timestep executes. *)
