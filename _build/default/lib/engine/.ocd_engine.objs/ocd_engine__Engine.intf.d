lib/engine/engine.mli: Instance Metrics Ocd_core Schedule Strategy
