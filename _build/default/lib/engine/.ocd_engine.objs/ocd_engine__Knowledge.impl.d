lib/engine/knowledge.ml: Array Bitset Components Digraph Instance List Ocd_core Ocd_graph Ocd_prelude
