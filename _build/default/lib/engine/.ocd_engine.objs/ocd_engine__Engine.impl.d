lib/engine/engine.ml: Array Bitset Digraph Format Hashtbl Instance List Metrics Move Ocd_core Ocd_graph Ocd_prelude Option Printf Prng Schedule Strategy Validate
