lib/engine/trace.ml: Array Bitset Buffer Instance List Ocd_core Ocd_prelude Printf Schedule String Validate
