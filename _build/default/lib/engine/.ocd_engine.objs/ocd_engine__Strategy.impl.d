lib/engine/strategy.ml: Bitset Instance Move Ocd_core Ocd_prelude Prng
