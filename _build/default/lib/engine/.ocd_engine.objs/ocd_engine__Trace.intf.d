lib/engine/trace.mli: Instance Ocd_core Schedule
