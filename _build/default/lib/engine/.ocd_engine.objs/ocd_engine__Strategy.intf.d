lib/engine/strategy.mli: Bitset Instance Move Ocd_core Ocd_prelude Prng
