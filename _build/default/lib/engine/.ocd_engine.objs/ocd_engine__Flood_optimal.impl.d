lib/engine/flood_optimal.ml: Array Format Knowledge Ocd_core Schedule Strategy Validate
