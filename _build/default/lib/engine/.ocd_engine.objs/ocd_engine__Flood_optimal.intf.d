lib/engine/flood_optimal.mli: Instance Ocd_core Schedule Strategy
