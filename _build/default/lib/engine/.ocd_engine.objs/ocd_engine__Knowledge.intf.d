lib/engine/knowledge.mli: Instance Ocd_core Ocd_prelude
