(** Explicit LOCD knowledge propagation (§4.1).

    The LOCD model requires every decision of vertex [v] at step [i]
    to be a function of its knowledge [k_i(v)], where [k_0(v)] derives
    from [v]'s own neighbourhood, [h(v)] and [w(v)], and [k_{i+1}(v)]
    may additionally fold in [k_i(u)] for each neighbour [u]
    (knowledge travels both directions along an edge).

    This module tracks the *provenance* form of that knowledge: which
    vertices' initial states each vertex has learned.  Since initial
    states and topology are static in the OCD model, "knows the state
    of [u]" is exactly "has [h(u)], [w(u)] and [u]'s incident edges" —
    enough, once complete, to reconstruct the whole instance and run
    any offline planner, which is how the §4.2 diameter-additive
    online algorithm works ({!Flood_optimal}).

    Propagation reaches completion after exactly
    [max_v ecc_undirected(v)] steps — the undirected eccentricity —
    which the test suite checks against the graph diameter. *)

open Ocd_core
type t

val create : Instance.t -> t
(** Initial knowledge: every vertex knows only itself. *)

val step : t -> unit
(** One synchronous exchange round with all neighbours. *)

val knows : t -> viewer:int -> subject:int -> bool

val vertex_complete : t -> int -> bool
(** Does [viewer] know every vertex's state? *)

val complete : t -> bool

val steps_to_complete : Instance.t -> int
(** Number of exchange rounds until {!complete}; raises
    [Invalid_argument] if the graph is not weakly connected (knowledge
    can never complete). *)

val known_have : t -> viewer:int -> subject:int -> Ocd_prelude.Bitset.t option
(** [h(subject)] if the viewer knows it (a defensive copy). *)
