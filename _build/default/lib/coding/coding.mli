(** Rateless-coded content distribution (§6 "Encoding").

    The paper's open problem: "it may be useful to introduce
    redundancy into the system by generating multiple sub-tokens, only
    a subset of which are necessary to reconstruct the original
    token."  This module models an idealised rateless (MDS/fountain-
    style) code at the token level: a file of [required] source blocks
    is expanded into [coded] ≥ [required] coded tokens, and a receiver
    reconstructs the file once it holds *any* [required] of them.

    Completion is therefore no longer [w(v) ⊆ p(v)] but a per-group
    counting condition, so coded workloads run through {!run}, a thin
    engine loop sharing the §3.1 move semantics with
    {!Ocd_engine.Engine} but stopping on the coded predicate.  The
    schedules it records are §3.1-valid for the underlying instance
    (validated on completion); only the termination condition differs.

    The benefit of coding in the loss-free OCD model is the classic
    last-block effect: with [coded = required] (no redundancy) a
    receiver must chase every specific missing token through the
    capacity constraints, while redundancy lets any surplus token
    finish the download.  The bench harness quantifies this. *)

open Ocd_core
open Ocd_prelude

type group = {
  group_id : int;
  tokens : Bitset.t;     (** the coded tokens of this file *)
  required : int;        (** how many suffice to decode *)
  receivers : int list;
}

type t = {
  instance : Instance.t;
      (** wants contain the full coded set of each receiver's group —
          the most any receiver could usefully pull *)
  groups : group list;
}

val single_file :
  Prng.t ->
  graph:Ocd_graph.Digraph.t ->
  required:int ->
  coded:int ->
  ?source:int ->
  unit ->
  t
(** One file of [required] source blocks coded into [coded] tokens
    held by the source; every other vertex is a receiver. *)

val decoded : t -> Bitset.t array -> int -> bool
(** [decoded t have v]: has vertex [v] decoded every group it belongs
    to (vacuously true for non-receivers)? *)

val all_decoded : t -> Bitset.t array -> bool

type run = {
  strategy_name : string;
  outcome : Ocd_engine.Engine.outcome;
  schedule : Schedule.t;
  makespan : int;
  bandwidth : int;
  completion_times : int array;  (** first step each vertex decoded; -1 never *)
}

val run :
  ?step_limit:int ->
  ?stall_patience:int ->
  strategy:Ocd_engine.Strategy.t ->
  seed:int ->
  t ->
  run
(** Runs a strategy until every receiver has decoded (or the run
    aborts).  The strategy sees the underlying instance; any §5.1
    heuristic works unmodified. *)
