open Ocd_core
open Ocd_prelude

type group = {
  group_id : int;
  tokens : Bitset.t;
  required : int;
  receivers : int list;
}

type t = {
  instance : Instance.t;
  groups : group list;
}

let single_file rng ~graph ~required ~coded ?source () =
  if required <= 0 || coded < required then
    invalid_arg "Coding.single_file: need 0 < required <= coded";
  let n = Ocd_graph.Digraph.vertex_count graph in
  let source =
    match source with
    | Some s ->
      if s < 0 || s >= n then invalid_arg "Coding.single_file: bad source";
      s
    | None -> Prng.int rng n
  in
  let receivers = List.filter (fun v -> v <> source) (Order.range n) in
  let all = Order.range coded in
  let instance =
    Instance.make ~graph ~token_count:coded
      ~have:[ (source, all) ]
      ~want:(List.map (fun v -> (v, all)) receivers)
  in
  {
    instance;
    groups =
      [
        {
          group_id = 0;
          tokens = Bitset.full coded;
          required;
          receivers;
        };
      ];
  }

let decoded t have v =
  List.for_all
    (fun g ->
      (not (List.mem v g.receivers))
      || Bitset.cardinal (Bitset.inter have.(v) g.tokens) >= g.required)
    t.groups

let all_decoded t have =
  let n = Instance.vertex_count t.instance in
  let rec go v = v >= n || (decoded t have v && go (v + 1)) in
  go 0

type run = {
  strategy_name : string;
  outcome : Ocd_engine.Engine.outcome;
  schedule : Schedule.t;
  makespan : int;
  bandwidth : int;
  completion_times : int array;
}

let completion_times t schedule =
  let p = Validate.possessions t.instance schedule in
  let n = Instance.vertex_count t.instance in
  Array.init n (fun v ->
      let rec earliest i =
        if i >= Array.length p then -1
        else if decoded t p.(i) v then i
        else earliest (i + 1)
      in
      earliest 0)

let run ?step_limit ?stall_patience ~strategy ~seed t =
  let inst = t.instance in
  let step_limit =
    match step_limit with
    | Some l -> l
    | None ->
      let n = Instance.vertex_count inst and m = max 1 inst.token_count in
      min ((m * (max 1 (n - 1))) + n + 64) 1_000_000
  in
  let stall_patience =
    match stall_patience with
    | Some p -> p
    | None -> (2 * inst.token_count) + 16
  in
  let rng = Prng.create ~seed in
  let decide = strategy.Ocd_engine.Strategy.make inst rng in
  let have = Array.map Bitset.copy inst.have in
  let steps = ref [] in
  let rec loop step since_progress =
    if all_decoded t have then Ocd_engine.Engine.Completed
    else if step >= step_limit then Ocd_engine.Engine.Step_limit
    else if since_progress >= stall_patience then Ocd_engine.Engine.Stalled step
    else begin
      let proposal =
        decide { Ocd_engine.Strategy.instance = inst; have; step; rng }
      in
      (* Reuse the static engine's §3.1 enforcement by replaying the
         proposal through its checker semantics: validity here means
         arcs exist, capacities hold, sources possess.  We inline the
         checks to keep the coded loop self-contained. *)
      let seen = Hashtbl.create 32 in
      let load = Hashtbl.create 32 in
      List.iter
        (fun (m : Move.t) ->
          let cap = Ocd_graph.Digraph.capacity inst.graph m.src m.dst in
          if cap = 0 then invalid_arg "Coding.run: move on missing arc";
          if Hashtbl.mem seen (m.src, m.dst, m.token) then
            invalid_arg "Coding.run: duplicate assignment";
          Hashtbl.replace seen (m.src, m.dst, m.token) ();
          let l = 1 + Option.value (Hashtbl.find_opt load (m.src, m.dst)) ~default:0 in
          Hashtbl.replace load (m.src, m.dst) l;
          if l > cap then invalid_arg "Coding.run: capacity exceeded";
          if not (Bitset.mem have.(m.src) m.token) then
            invalid_arg "Coding.run: token not possessed")
        proposal;
      let fresh = ref 0 in
      List.iter
        (fun (m : Move.t) ->
          if not (Bitset.mem have.(m.dst) m.token) then incr fresh)
        proposal;
      List.iter (fun (m : Move.t) -> Bitset.add have.(m.dst) m.token) proposal;
      steps := proposal :: !steps;
      loop (step + 1) (if !fresh > 0 then 0 else since_progress + 1)
    end
  in
  let outcome = loop 0 0 in
  let schedule =
    Schedule.drop_trailing_empty (Schedule.of_steps (List.rev !steps))
  in
  (match (outcome, Validate.check inst schedule) with
  | Ocd_engine.Engine.Completed, Error e ->
    invalid_arg
      (Format.asprintf "Coding.run: invalid schedule: %a" Validate.pp_error e)
  | _ -> ());
  let completion = completion_times t schedule in
  {
    strategy_name = strategy.Ocd_engine.Strategy.name;
    outcome;
    schedule;
    makespan = Array.fold_left max 0 completion;
    bandwidth = Schedule.move_count schedule;
    completion_times = completion;
  }
