lib/coding/coding.mli: Bitset Instance Ocd_core Ocd_engine Ocd_graph Ocd_prelude Prng Schedule
