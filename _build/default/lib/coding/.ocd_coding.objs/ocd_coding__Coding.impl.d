lib/coding/coding.ml: Array Bitset Format Hashtbl Instance List Move Ocd_core Ocd_engine Ocd_graph Ocd_prelude Option Order Prng Schedule Validate
