type table = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Report.row: cell count mismatch";
  t.rows <- cells :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let widths =
    List.fold_left
      (fun acc cells -> List.map2 (fun w c -> max w (String.length c)) acc cells)
      (List.map (fun _ -> 0) t.columns)
      all
  in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let print_row cells =
    print_string "  ";
    List.iter2 (fun w c -> print_string (pad w c); print_string "  ") widths cells;
    print_newline ()
  in
  Printf.printf "-- %s\n" t.title;
  print_row t.columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  (* CSV mirror for machine consumption. *)
  let slug =
    String.map (fun c -> if c = ' ' || c = ',' then '_' else c) t.title
  in
  List.iter
    (fun cells -> Printf.printf "csv,%s,%s\n" slug (String.concat "," cells))
    rows;
  print_newline ()

let section title =
  Printf.printf "\n==== %s ====\n\n%!" title

let note fmt = Format.kasprintf (fun s -> Printf.printf "  %s\n%!" s) fmt
