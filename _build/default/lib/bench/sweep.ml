open Ocd_core
open Ocd_prelude

type aggregate = {
  strategy : string;
  moves : Stats.summary;
  bandwidth : Stats.summary;
  pruned : Stats.summary;
}

type point_result = {
  x_label : string;
  bandwidth_lb : int;
  makespan_lb : int;
  aggregates : aggregate list;
}

let run_point ?(trials = 3) ~seed ~strategies ~x_label build =
  let rng = Prng.create ~seed in
  let instance = build rng in
  let run_strategy strategy =
    let results =
      List.map
        (fun trial ->
          let run =
            Ocd_engine.Engine.completed_exn
              (Ocd_engine.Engine.run ~strategy ~seed:(seed + (31 * trial)) instance)
          in
          run.Ocd_engine.Engine.metrics)
        (Order.range trials)
    in
    {
      strategy = strategy.Ocd_engine.Strategy.name;
      moves = Stats.summarize_ints (List.map (fun m -> m.Metrics.makespan) results);
      bandwidth =
        Stats.summarize_ints (List.map (fun m -> m.Metrics.bandwidth) results);
      pruned =
        Stats.summarize_ints
          (List.map (fun m -> m.Metrics.pruned_bandwidth) results);
    }
  in
  {
    x_label;
    bandwidth_lb = Bounds.bandwidth_lower_bound instance;
    makespan_lb =
      (if Instance.satisfiable instance then Bounds.makespan_lower_bound instance
       else 0);
    aggregates = List.map run_strategy strategies;
  }

let report ~title ~x_column points =
  let table =
    Report.create ~title
      ~columns:
        [
          x_column;
          "strategy";
          "moves";
          "bandwidth";
          "pruned_bw";
          "bw_lb";
          "moves_lb";
        ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun a ->
          Report.row table
            [
              p.x_label;
              a.strategy;
              Printf.sprintf "%.1f" a.moves.Stats.mean;
              Printf.sprintf "%.0f" a.bandwidth.Stats.mean;
              Printf.sprintf "%.0f" a.pruned.Stats.mean;
              string_of_int p.bandwidth_lb;
              string_of_int p.makespan_lb;
            ])
        p.aggregates)
    points;
  Report.render table
