(** Multi-trial experiment runner.

    The paper's methodology: "We generate several instances of the
    graph for each size graph, and repeat our heuristics 3 times for
    each graph" — seeded here so every figure is reproducible.  For
    each x-axis point this module builds an instance (from a seed
    derived from the base seed and the point), runs every strategy for
    the configured number of trials, and aggregates makespan ("moves"
    in the figures' terminology), bandwidth, pruned bandwidth and the
    §5.1 lower bounds. *)

open Ocd_core

type aggregate = {
  strategy : string;
  moves : Ocd_prelude.Stats.summary;      (** makespan over trials *)
  bandwidth : Ocd_prelude.Stats.summary;
  pruned : Ocd_prelude.Stats.summary;
}

type point_result = {
  x_label : string;
  bandwidth_lb : int;
  makespan_lb : int;
  aggregates : aggregate list;
}

val run_point :
  ?trials:int ->
  seed:int ->
  strategies:Ocd_engine.Strategy.t list ->
  x_label:string ->
  (Ocd_prelude.Prng.t -> Instance.t) ->
  point_result
(** [run_point ~seed ~strategies ~x_label build] derives a fresh PRNG
    from [seed], builds the instance once, and runs each strategy
    [trials] (default 3) times with distinct engine seeds.  Raises
    [Failure] if a strategy fails to complete (a stalled heuristic is
    a bug, not a data point). *)

val report :
  title:string -> x_column:string -> point_result list -> unit
(** Renders the standard moves/bandwidth table for a sweep. *)
