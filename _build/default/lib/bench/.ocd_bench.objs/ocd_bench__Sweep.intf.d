lib/bench/sweep.mli: Instance Ocd_core Ocd_engine Ocd_prelude
