lib/bench/sweep.ml: Bounds Instance List Metrics Ocd_core Ocd_engine Ocd_prelude Order Printf Prng Report Stats
