lib/bench/report.mli: Format
