lib/bench/experiments.mli:
