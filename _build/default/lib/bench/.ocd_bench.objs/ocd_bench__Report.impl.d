lib/bench/report.ml: Format List Printf String
