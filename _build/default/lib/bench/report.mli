(** Plain-text experiment reporting: aligned tables plus CSV lines that
    downstream plotting scripts can grep out (lines prefixed
    ["csv,"]). *)

type table

val create : title:string -> columns:string list -> table

val row : table -> string list -> unit
(** Buffers one row (lengths must match the header). *)

val render : table -> unit
(** Prints the aligned table and its CSV mirror to stdout. *)

val section : string -> unit
(** Prints a section banner. *)

val note : ('a, Format.formatter, unit, unit) format4 -> 'a
(** Prints a free-form commentary line. *)
