(** The Random heuristic (§5.1).

    "In this heuristic we assume that peers have current knowledge
    about the tokens known by each of their peers at the beginning of
    the turn.  Each vertex then independently chooses at random which
    tokens to send over the edge."

    Knowledge model: own state plus each out-neighbour's possession at
    the start of the turn.  For every outgoing arc the sender draws a
    uniformly random subset (of size up to the arc capacity) of the
    tokens it holds and the receiver lacks; it pays no attention to
    wants, so like round-robin it floods — but never wastes a move on
    a token the receiver already has, and independently random choices
    at different senders may still duplicate one another. *)

val strategy : Ocd_engine.Strategy.t

val with_staleness : turns:int -> Ocd_engine.Strategy.t
(** The paper's suggested relaxation: "allowing peers to know about
    the state 'k' turns ago of their peers."  Senders choose random
    tokens against a snapshot of the receiver's possession from
    [turns] steps earlier (the initial state for the first [turns]
    steps), so tokens the receiver acquired since may be resent —
    quantifying how much the zero-staleness assumption of the Random
    heuristic is worth.  [turns = 0] is exactly {!strategy}'s
    knowledge model. *)
