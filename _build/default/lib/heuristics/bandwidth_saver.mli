(** The Bandwidth heuristic (§5.1).

    "We developed an online heuristic, albeit with global knowledge,
    which more cautiously adds tokens to a move.  This bandwidth
    heuristic is designed on the principle that each vertex shall
    obtain from its peers in its next turn only tokens that it will
    eventually use.  We then determine whether a vertex will use the
    token by i) if it needs the token, or ii) if it is the closest
    one-hop-knowledge vertex to a node that needs it.  A
    one-hop-knowledge vertex is one which for a given token, *could*
    obtain the token in a single turn given the opportunity."

    Implementation: for every token still needed somewhere, the
    one-hop set is the set of vertices lacking the token with an
    in-neighbour holding it.  A Voronoi-labelled multi-source BFS from
    the one-hop set identifies, for each needer, its closest one-hop
    vertex; exactly those vertices qualify as relays this turn.  Each
    vertex then pulls — wants first, relay tokens second, rarest first
    within each class — assigning every pulled token to a single
    holding in-neighbour under the arc capacities.  Unlike the
    flooding heuristics, tokens that nobody downstream needs are never
    transferred, which is what yields the Figure 4/5 bandwidth
    savings at the price of slightly more timesteps. *)

val strategy : Ocd_engine.Strategy.t
