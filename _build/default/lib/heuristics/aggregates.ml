open Ocd_core
open Ocd_prelude

type t = { have_count : int array; need_count : int array }

let compute (inst : Instance.t) have =
  let m = inst.token_count in
  let have_count = Array.make m 0 in
  let need_count = Array.make m 0 in
  for v = 0 to Instance.vertex_count inst - 1 do
    Bitset.iter (fun t -> have_count.(t) <- have_count.(t) + 1) have.(v);
    Bitset.iter
      (fun t -> if not (Bitset.mem have.(v) t) then need_count.(t) <- need_count.(t) + 1)
      inst.want.(v)
  done;
  { have_count; need_count }

let rarity t token = t.have_count.(token)
let needed t token = t.need_count.(token) > 0
