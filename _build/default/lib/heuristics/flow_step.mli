(** An extension heuristic: per-step exact want maximisation.

    At every timestep each receiver solves its token→in-arc assignment
    problem *exactly* (bipartite max-flow over the tokens it wants and
    the neighbours that hold them), so no step ever leaves a
    satisfiable want-delivery on the table; remaining arc budget is
    then filled with rarest-first relay flooding, as the Local
    heuristic does.

    This is the natural "greedy-optimal step" algorithm the §5.1
    heuristics approximate with their one-token-at-a-time assignment
    loops, and serves as a strong makespan reference in the benches:
    the §5.1 heuristics' gap to it measures how much their cheap
    assignment rules lose per step.  Knowledge model: global, like the
    Global heuristic. *)

val strategy : Ocd_engine.Strategy.t
