lib/heuristics/flow_step.ml: Aggregates Array Bitset Digraph Instance List Maxflow Move Ocd_core Ocd_engine Ocd_graph Ocd_prelude Order
