lib/heuristics/aggregates.ml: Array Bitset Instance Ocd_core Ocd_prelude
