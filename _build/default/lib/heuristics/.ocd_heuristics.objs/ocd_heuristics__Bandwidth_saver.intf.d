lib/heuristics/bandwidth_saver.mli: Ocd_engine
