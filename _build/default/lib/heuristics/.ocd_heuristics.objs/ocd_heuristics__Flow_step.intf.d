lib/heuristics/flow_step.mli: Ocd_engine
