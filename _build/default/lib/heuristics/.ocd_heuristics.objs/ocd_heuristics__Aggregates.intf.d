lib/heuristics/aggregates.mli: Bitset Instance Ocd_core Ocd_prelude
