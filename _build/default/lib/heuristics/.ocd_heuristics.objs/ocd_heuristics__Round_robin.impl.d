lib/heuristics/round_robin.ml: Array Bitset Digraph Hashtbl Instance List Move Ocd_core Ocd_engine Ocd_graph Ocd_prelude Option
