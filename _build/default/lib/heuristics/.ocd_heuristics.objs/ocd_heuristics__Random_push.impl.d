lib/heuristics/random_push.ml: Array Bitset Digraph Instance List Move Ocd_core Ocd_engine Ocd_graph Ocd_prelude Printf Prng
