lib/heuristics/bandwidth_saver.ml: Aggregates Array Bitset Digraph Instance List Move Ocd_core Ocd_engine Ocd_graph Ocd_prelude Order Queue
