lib/heuristics/round_robin.mli: Ocd_engine
