lib/heuristics/local_rarest.mli: Ocd_engine
