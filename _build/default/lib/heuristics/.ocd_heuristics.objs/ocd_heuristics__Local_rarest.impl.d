lib/heuristics/local_rarest.ml: Aggregates Array Bitset Digraph Instance List Move Ocd_core Ocd_engine Ocd_graph Ocd_prelude Order Printf Prng
