lib/heuristics/registry.mli: Ocd_engine
