lib/heuristics/registry.ml: Bandwidth_saver Global_greedy List Local_rarest Ocd_engine Random_push Round_robin
