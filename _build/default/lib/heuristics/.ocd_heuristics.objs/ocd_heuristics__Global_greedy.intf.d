lib/heuristics/global_greedy.mli: Ocd_engine
