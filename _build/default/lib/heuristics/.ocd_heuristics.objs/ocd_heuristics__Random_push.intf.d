lib/heuristics/random_push.mli: Ocd_engine
