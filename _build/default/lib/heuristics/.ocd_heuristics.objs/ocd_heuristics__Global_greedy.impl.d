lib/heuristics/global_greedy.ml: Aggregates Array Bitset Digraph Fun Instance List Move Ocd_core Ocd_engine Ocd_graph Ocd_prelude Order Prng
