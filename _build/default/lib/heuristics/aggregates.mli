(** Per-step global aggregate vectors shared by the knowledge-rich
    heuristics.

    The Local heuristic assumes "at every time step, the step's initial
    aggregate need and knowledge are distributed to all vertices"
    (e.g. over a side multicast tree); the Global and Bandwidth
    heuristics assume full coordination.  This module computes those
    aggregates once per timestep from the engine's context. *)

open Ocd_core
open Ocd_prelude

type t = {
  have_count : int array;
      (** per token: number of vertices currently holding it ("knowledge") *)
  need_count : int array;
      (** per token: number of vertices wanting but lacking it ("need") *)
}

val compute : Instance.t -> Bitset.t array -> t

val rarity : t -> int -> int
(** [have_count], the paper's rarity measure (lower = rarer). *)

val needed : t -> int -> bool
(** Still wanted by someone who lacks it. *)
