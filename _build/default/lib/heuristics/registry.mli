(** Name → strategy lookup for the CLI, examples and bench harness. *)

val all : Ocd_engine.Strategy.t list
(** The five §5.1 heuristics, in the paper's presentation order:
    round-robin, random, local, bandwidth, global. *)

val online : Ocd_engine.Strategy.t list
(** The strategies implementable with per-vertex knowledge only
    (round-robin, random, local). *)

val find : string -> Ocd_engine.Strategy.t option

val names : string list
