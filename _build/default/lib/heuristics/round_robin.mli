(** The Round Robin heuristic (§5.1).

    "The round-robin strategy simply sends the circular queue of tokens
    over each link (skipping tokens it does not have).  This is the
    simplest of the heuristics, and can easily be computed locally as
    no information other than the set of tokens kept locally and the
    last token sent to each peer [is needed]."

    Knowledge model: strictly local — each vertex sees only its own
    token set and remembers, per outgoing arc, the position of its
    circular cursor.  It neither knows what its peer holds nor what
    anyone wants, so it floods: every step it fills each outgoing
    arc's capacity with the next tokens (by id, cyclically) that it
    possesses. *)

val strategy : Ocd_engine.Strategy.t
