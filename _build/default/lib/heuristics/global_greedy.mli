(** The Global heuristic (§5.1).

    "In addition to the aggregate vector, vertices have the ability to
    coordinate across each other at each timestep to ensure that they
    maximize diversity.  This also alleviates the need for vertices to
    request tokens from other vertices since there is global
    coordination.  Our implementation of this technique applies a
    greedy selection algorithm over the set of tokens and edges, and
    is thus not guaranteed to maximize diversity."

    Implementation: one coordinated greedy pass per timestep.
    Receivers are visited in random order; each receiver is assigned
    (a) the tokens it still wants, then (b) arbitrary tokens it lacks
    (flooding, for diversity), both rarest-first against a *working*
    holder count that is incremented as assignments are made — so the
    greedy choice spreads distinct rare tokens across the system
    instead of duplicating the same one everywhere.  Global
    coordination guarantees a token is delivered to a vertex at most
    once per step, and each delivery is assigned to exactly one
    holding in-neighbour within arc capacities. *)

val strategy : Ocd_engine.Strategy.t
