let all =
  [
    Round_robin.strategy;
    Random_push.strategy;
    Local_rarest.strategy;
    Bandwidth_saver.strategy;
    Global_greedy.strategy;
  ]

let online =
  [ Round_robin.strategy; Random_push.strategy; Local_rarest.strategy ]

let find name =
  List.find_opt (fun s -> s.Ocd_engine.Strategy.name = name) all

let names = List.map (fun s -> s.Ocd_engine.Strategy.name) all
