(** The Local heuristic — rarest random with request subdivision (§5.1).

    "The design of our local heuristic is based on the commonly
    proposed notion of 'rarest random' [...].  For simplicity, we have
    assumed that at every time step, the step's initial aggregate need
    and knowledge are distributed to all vertices.  [...] To avoid the
    problem where two peers send the same 'rare' block in the same
    direction, our heuristic subdivides a vertex's needs to their
    peers.  This is analogous to a request for blocks."

    Knowledge model: own state, each neighbour's possession, and the
    global aggregate have/need vectors of the current step
    ({!Aggregates}).  Each receiver ranks the tokens it lacks by
    rarity (ascending holder count, ties shuffled), then assigns each
    such token to exactly one in-neighbour that holds it, subject to
    arc capacities — so no two peers push the same block at it in the
    same turn.  Like the other flooding heuristics it requests *all*
    tokens it lacks, not only wanted ones, which is what lets content
    cross non-receiver relays (and why its bandwidth does not shrink
    with receiver density, as Figure 4 shows). *)

val strategy : Ocd_engine.Strategy.t

val with_aggregate_delay : turns:int -> Ocd_engine.Strategy.t
(** The aggregate-staleness variant the paper flags: "we recognize the
    potential need to support a delay in the aggregate knowledge
    known."  Rarity ranking uses the global have-vector from [turns]
    steps ago (the initial state until then); per-neighbour possession
    stays current (requests must still be honourable).  [turns = 0]
    is {!strategy}. *)

val strategy_without_subdivision : Ocd_engine.Strategy.t
(** Ablation variant: sender-driven rarest-first pushing with no
    request subdivision — each sender independently pushes its rarest
    useful tokens, so "two peers send the same rare block in the same
    direction".  Used by the bench harness to quantify how much the
    paper's subdivision step saves. *)
