open Ocd_graph

let s = 0
let r = 1
let a = 2
let r' = 3

let instance () =
  let graph =
    Digraph.of_arcs ~vertex_count:4
      [
        { src = s; dst = r; capacity = 1 };
        { src = s; dst = a; capacity = 2 };
        { src = a; dst = r; capacity = 2 };
        { src = s; dst = r'; capacity = 1 };
      ]
  in
  Instance.make ~graph ~token_count:3
    ~have:[ (s, [ 0; 1; 2 ]) ]
    ~want:[ (r, [ 0; 1; 2 ]); (r', [ 0 ]) ]

let move src dst token = { Move.src; dst; token }

let min_time_schedule () =
  Schedule.of_steps
    [
      [ move s r 0; move s a 1; move s a 2; move s r' 0 ];
      [ move a r 1; move a r 2 ];
    ]

let min_bandwidth_schedule () =
  Schedule.of_steps
    [
      [ move s r 0; move s r' 0 ];
      [ move s r 1 ];
      [ move s r 2 ];
    ]
