open Ocd_prelude

type t = {
  makespan : int;
  bandwidth : int;
  pruned_bandwidth : int;
  completion_times : int array;
}

let completion_times (inst : Instance.t) schedule =
  let n = Instance.vertex_count inst in
  let p = Validate.possessions inst schedule in
  let times = Array.make n (-1) in
  for v = 0 to n - 1 do
    let rec earliest i =
      if i >= Array.length p then -1
      else if Bitset.subset inst.want.(v) p.(i).(v) then i
      else earliest (i + 1)
    in
    times.(v) <- earliest 0
  done;
  times

let of_schedule inst schedule =
  let completion = completion_times inst schedule in
  let makespan = Array.fold_left max 0 completion in
  let pruned = Prune.prune inst schedule in
  {
    makespan;
    bandwidth = Schedule.move_count schedule;
    pruned_bandwidth = Schedule.move_count pruned;
    completion_times = completion;
  }

let mean_completion t =
  let defined =
    Array.to_list t.completion_times |> List.filter (fun x -> x >= 0)
  in
  match defined with
  | [] -> 0.0
  | xs -> Stats.mean (List.map float_of_int xs)

let pp ppf t =
  Format.fprintf ppf "makespan=%d bandwidth=%d pruned=%d mean_completion=%.2f"
    t.makespan t.bandwidth t.pruned_bandwidth (mean_completion t)
