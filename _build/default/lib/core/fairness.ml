type t = {
  uploads : int array;
  downloads : int array;
  jain_index : float;
}

let jain = function
  | [] -> 1.0
  | xs ->
    let n = float_of_int (List.length xs) in
    let sum = List.fold_left ( +. ) 0.0 xs in
    let sum_sq = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if sum_sq = 0.0 then 1.0 else sum *. sum /. (n *. sum_sq)

let of_schedule (inst : Instance.t) schedule =
  let n = Instance.vertex_count inst in
  let uploads = Array.make n 0 in
  let downloads = Array.make n 0 in
  Schedule.iter_moves schedule (fun ~step:_ (m : Move.t) ->
      uploads.(m.src) <- uploads.(m.src) + 1;
      downloads.(m.dst) <- downloads.(m.dst) + 1);
  let participant_uploads =
    List.filteri (fun v _ -> downloads.(v) > 0) (Array.to_list uploads)
    |> List.map float_of_int
  in
  { uploads; downloads; jain_index = jain participant_uploads }

let contribution_ratio t v =
  if t.downloads.(v) = 0 then if t.uploads.(v) = 0 then 1.0 else infinity
  else float_of_int t.uploads.(v) /. float_of_int t.downloads.(v)
