open Ocd_prelude
open Ocd_graph

type file = { file_id : int; tokens : int list; receivers : int list }

type t = {
  instance : Instance.t;
  sources : int list;
  files : file list;
}

let choose_source rng graph = function
  | Some s ->
    if s < 0 || s >= Digraph.vertex_count graph then
      invalid_arg "Scenario: source out of range";
    s
  | None -> Prng.int rng (Digraph.vertex_count graph)

let all_tokens tokens = Order.range tokens

let single_file rng ~graph ~tokens ?source () =
  let source = choose_source rng graph source in
  let receivers =
    List.filter (fun v -> v <> source) (Digraph.vertices graph)
  in
  let instance =
    Instance.make ~graph ~token_count:tokens
      ~have:[ (source, all_tokens tokens) ]
      ~want:(List.map (fun v -> (v, all_tokens tokens)) receivers)
  in
  {
    instance;
    sources = [ source ];
    files = [ { file_id = 0; tokens = all_tokens tokens; receivers } ];
  }

let receiver_density rng ~graph ~tokens ~threshold ?source () =
  if threshold < 0.0 || threshold > 1.0 then
    invalid_arg "Scenario.receiver_density: threshold out of [0,1]";
  let source = choose_source rng graph source in
  let receivers =
    List.filter
      (fun v -> v <> source && Prng.float rng 1.0 < threshold)
      (Digraph.vertices graph)
  in
  let instance =
    Instance.make ~graph ~token_count:tokens
      ~have:[ (source, all_tokens tokens) ]
      ~want:(List.map (fun v -> (v, all_tokens tokens)) receivers)
  in
  {
    instance;
    sources = [ source ];
    files = [ { file_id = 0; tokens = all_tokens tokens; receivers } ];
  }

let subdivide_files rng ~graph ~total_tokens ~files ?(multi_sender = false)
    ?source () =
  if files <= 0 || total_tokens mod files <> 0 then
    invalid_arg "Scenario.subdivide_files: files must divide total_tokens";
  let n = Digraph.vertex_count graph in
  if files > n - 1 then
    invalid_arg "Scenario.subdivide_files: more files than receivers";
  let per_file = total_tokens / files in
  let file_tokens i = List.init per_file (fun k -> (i * per_file) + k) in
  let source = choose_source rng graph source in
  (* Random balanced partition of the non-source vertices into one
     receiver group per file (sizes differ by at most one). *)
  let others =
    Array.of_list (List.filter (fun v -> v <> source) (Digraph.vertices graph))
  in
  Prng.shuffle rng others;
  let groups = Array.make files [] in
  Array.iteri (fun i v -> groups.(i mod files) <- v :: groups.(i mod files)) others;
  let file_records =
    List.map
      (fun i ->
        { file_id = i; tokens = file_tokens i; receivers = List.rev groups.(i) })
      (Order.range files)
  in
  let want =
    List.concat_map
      (fun f -> List.map (fun v -> (v, f.tokens)) f.receivers)
      file_records
  in
  if not multi_sender then begin
    let instance =
      Instance.make ~graph ~token_count:total_tokens
        ~have:[ (source, all_tokens total_tokens) ]
        ~want
    in
    { instance; sources = [ source ]; files = file_records }
  end
  else begin
    (* §5.3 multiple senders: "the source of each file was randomly
       chosen from the set of vertices which did not want it". *)
    let pick_sender f =
      let non_wanters =
        List.filter (fun v -> not (List.mem v f.receivers)) (Digraph.vertices graph)
      in
      Prng.pick_list rng non_wanters
    in
    let have =
      List.map (fun f -> (pick_sender f, f.tokens)) file_records
    in
    let instance =
      Instance.make ~graph ~token_count:total_tokens ~have ~want
    in
    {
      instance;
      sources = List.sort_uniq compare (List.map fst have);
      files = file_records;
    }
  end
