type t = { src : int; dst : int; token : int }

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp ppf { src; dst; token } = Format.fprintf ppf "%d->%d:%d" src dst token
