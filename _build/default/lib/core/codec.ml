open Ocd_prelude
open Ocd_graph

let instance_to_string (inst : Instance.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "instance %d %d\n"
       (Instance.vertex_count inst)
       inst.Instance.token_count);
  List.iter
    (fun { Digraph.src; dst; capacity } ->
      Buffer.add_string buf (Printf.sprintf "arc %d %d %d\n" src dst capacity))
    (Digraph.arcs inst.Instance.graph);
  let dump_sets keyword sets =
    Array.iteri
      (fun v s ->
        if not (Bitset.is_empty s) then begin
          Buffer.add_string buf (Printf.sprintf "%s %d" keyword v);
          Bitset.iter (fun t -> Buffer.add_string buf (Printf.sprintf " %d" t)) s;
          Buffer.add_char buf '\n'
        end)
      sets
  in
  dump_sets "have" inst.Instance.have;
  dump_sets "want" inst.Instance.want;
  Buffer.contents buf

let tokenize line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_ints words =
  try Ok (List.map int_of_string words) with Failure _ -> Error "bad integer"

let instance_of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let header, rest =
    match lines with
    | first :: rest -> (first, rest)
    | [] -> ("", [])
  in
  match tokenize header with
  | [ "instance"; n; m ] -> (
    match (int_of_string_opt n, int_of_string_opt m) with
    | Some n, Some m -> (
      let arcs = ref [] and have = ref [] and want = ref [] in
      let parse_line line =
        match tokenize line with
        | "arc" :: words -> (
          match parse_ints words with
          | Ok [ src; dst; capacity ] ->
            arcs := { Digraph.src; dst; capacity } :: !arcs;
            Ok ()
          | Ok _ -> Error "arc expects 3 integers"
          | Error e -> Error e)
        | "have" :: words -> (
          match parse_ints words with
          | Ok (v :: tokens) ->
            have := (v, tokens) :: !have;
            Ok ()
          | Ok [] -> Error "have expects a vertex"
          | Error e -> Error e)
        | "want" :: words -> (
          match parse_ints words with
          | Ok (v :: tokens) ->
            want := (v, tokens) :: !want;
            Ok ()
          | Ok [] -> Error "want expects a vertex"
          | Error e -> Error e)
        | keyword :: _ -> Error (Printf.sprintf "unknown record %S" keyword)
        | [] -> Ok ()
      in
      let rec go = function
        | [] -> Ok ()
        | line :: rest -> (
          match parse_line line with Ok () -> go rest | Error e -> Error e)
      in
      match go rest with
      | Error e -> Error e
      | Ok () -> (
        try
          let graph = Digraph.of_arcs ~vertex_count:n (List.rev !arcs) in
          Ok (Instance.make ~graph ~token_count:m ~have:!have ~want:!want)
        with Invalid_argument msg -> Error msg))
    | _ -> Error "bad instance header")
  | _ -> Error "expected 'instance <n> <m>' header"

let schedule_to_string schedule =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "schedule\n";
  List.iter
    (fun moves ->
      Buffer.add_string buf "step";
      List.iter
        (fun (m : Move.t) ->
          Buffer.add_string buf
            (Printf.sprintf " %d>%d:%d" m.src m.dst m.token))
        moves;
      Buffer.add_char buf '\n')
    (Schedule.steps schedule);
  Buffer.contents buf

let parse_move word =
  match String.split_on_char '>' word with
  | [ src; rest ] -> (
    match String.split_on_char ':' rest with
    | [ dst; token ] -> (
      match
        (int_of_string_opt src, int_of_string_opt dst, int_of_string_opt token)
      with
      | Some src, Some dst, Some token -> Ok { Move.src; dst; token }
      | _ -> Error (Printf.sprintf "bad move %S" word))
    | _ -> Error (Printf.sprintf "bad move %S" word))
  | _ -> Error (Printf.sprintf "bad move %S" word)

let schedule_of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | "schedule" :: rest ->
    let parse_step line =
      match tokenize line with
      | "step" :: moves ->
        List.fold_left
          (fun acc word ->
            match (acc, parse_move word) with
            | Ok ms, Ok m -> Ok (m :: ms)
            | (Error _ as e), _ -> e
            | _, Error e -> Error e)
          (Ok []) moves
        |> Result.map List.rev
      | _ -> Error (Printf.sprintf "expected step line, got %S" line)
    in
    let rec go acc = function
      | [] -> Ok (Schedule.of_steps (List.rev acc))
      | line :: rest -> (
        match parse_step line with
        | Ok step -> go (step :: acc) rest
        | Error e -> Error e)
    in
    go [] rest
  | _ -> Error "expected 'schedule' header"
