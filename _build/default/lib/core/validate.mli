(** Independent checker for the §3.1 schedule validity constraints.

    Every schedule produced by the simulator, the baselines and the
    exact solvers is re-checked here before its metrics are reported,
    so a bug in a strategy cannot silently inflate results.

    Constraints checked per step [i]:
    - arcs exist: each move uses an arc of [G];
    - set semantics: no (arc, token) pair repeated within a step;
    - capacity: at most [c(u, v)] tokens on arc [(u, v)];
    - possession: a vertex only sends tokens it holds at the *start*
      of the step ([s_i(u,v) ⊆ p_i(u)]).

    Success additionally requires [w(v) ⊆ p_t(v)] for all [v]. *)

type error =
  | No_such_arc of { step : int; move : Move.t }
  | Duplicate_assignment of { step : int; move : Move.t }
  | Capacity_exceeded of {
      step : int;
      src : int;
      dst : int;
      sent : int;
      capacity : int;
    }
  | Not_possessed of { step : int; move : Move.t }
  | Unsatisfied of { vertex : int; missing : int list }

val pp_error : Format.formatter -> error -> unit

val check : Instance.t -> Schedule.t -> (unit, error) result
(** Validity only (ignores wants). *)

val check_successful : Instance.t -> Schedule.t -> (unit, error) result
(** Validity plus success. *)

val possessions : Instance.t -> Schedule.t -> Ocd_prelude.Bitset.t array array
(** [possessions inst s].(i).(v) is [p_i(v)] for [i] in
    [\[0, length s\]] — the possession sets before step [i] (index
    [length s] is the final state).  Computed by folding the schedule
    regardless of validity. *)

val final_possessions : Instance.t -> Schedule.t -> Ocd_prelude.Bitset.t array
(** [p_t]: possession after the last step. *)
