(** Lower-bound estimators (§5.1).

    These give cheap, not necessarily tight, lower bounds on the
    bandwidth and makespan any successful schedule must pay, evaluated
    either on an instance's initial state or on an intermediate
    possession state (the simulator uses them to report optimality
    gaps).

    - {!remaining_bandwidth} "counts every token that is wanted but not
      known at each vertex" — the bandwidth needed if the schedule
      could finish in one step.
    - {!remaining_makespan} is the paper's [M_i(v) = i +
      ceil(|T^{c_i(v)}| / indeg(v))] bound, maximised over all radii
      [i] and vertices [v], where [T^{c_i(v)}] is the set of tokens
      the vertex still needs whose nearest current holder is more than
      [i] hops away.  We divide by the vertex's total incoming
      *capacity* (the per-step intake ceiling); with the paper's unit
      interpretation of "indegree" this is the natural capacitated
      generalisation.
    - {!one_step_feasible} is the paper's special-cased single-step
      lookahead: a necessary condition for the remaining distribution
      to complete in one timestep. *)

open Ocd_prelude

val remaining_bandwidth : Instance.t -> have:Bitset.t array -> int

val bandwidth_lower_bound : Instance.t -> int
(** {!remaining_bandwidth} at the initial state. *)

val relay_aware_bandwidth_lower_bound : Instance.t -> int
(** A tighter bandwidth bound: per token, beyond the deficit count,
    any wanter at hop distance [d] from the token's nearest holder
    forces the token through [d - 1] distinct intermediate vertices,
    each of which must receive its own copy.  Summing
    [deficit_t + max(0, max_d_t - 1)] per token remains a valid lower
    bound (the relay vertices of the farthest wanter are distinct from
    one another; a relay that is itself a wanter is not double-counted
    because the bound only adds relays *beyond* the wanter set — we
    use the farthest wanter's distance through non-wanters, falling
    back to the plain deficit when every shortest path runs through
    wanters).  Sits between {!bandwidth_lower_bound} and the EOCD
    optimum.
    @raise Invalid_argument on unsatisfiable instances. *)

val remaining_makespan : Instance.t -> have:Bitset.t array -> int
(** The [max_v max_i M_i(v)] bound from the current state; 0 when all
    wants are met.
    @raise Invalid_argument if some wanted token is unreachable from
    every current holder. *)

val makespan_lower_bound : Instance.t -> int
(** {!remaining_makespan} at the initial state. *)

val one_step_feasible : Instance.t -> have:Bitset.t array -> bool
(** Necessary condition for finishing in one more step: every deficit
    token of each vertex is held by an in-neighbour and the per-arc
    capacities admit a fractional assignment covering each vertex's
    deficit ([|deficit(v)| <= Σ_u min(cap(u,v), |deficit(v) ∩
    have(u)|)]).  [true] does not guarantee feasibility (the exact
    question is an assignment problem); [false] proves ≥ 2 steps. *)

val one_step_exact : Instance.t -> have:Bitset.t array -> bool
(** Exact single-step feasibility: for each vertex, the assignment of
    deficit tokens to supplying in-arcs is solved as a bipartite
    max-flow ({!Ocd_graph.Maxflow}); deliveries to distinct vertices
    use distinct arcs, so per-vertex feasibility is exact for the
    whole step.  Implies {!one_step_feasible}. *)
