(** A move: the assignment of one token to one arc during one timestep
    (§3.1).  Bandwidth consumption of a schedule = its move count. *)

type t = { src : int; dst : int; token : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
