(** The Figure 1 tension instance.

    Figure 1 of the paper shows "a graph in which minimizing the time
    taken and the bandwidth required are at odds.  The minimum time
    schedule takes 2 timesteps and uses 6 units of bandwidth; a minimum
    bandwidth schedule uses 4 units of bandwidth but takes 3
    timesteps."  The drawing itself is not recoverable from the text,
    so this module provides an instance with exactly those optima
    (verified by the exact solvers in the test suite):

    - vertices: source [s = 0], receiver [r = 1] wanting tokens
      [{0, 1, 2}], relay [a = 2] wanting nothing, receiver [r' = 3]
      wanting [{0}];
    - arcs: [s->r] capacity 1, [s->a] capacity 2, [a->r] capacity 2,
      [s->r'] capacity 1;
    - [s] initially holds all three tokens.

    Exact optima (verified by {!Ocd_exact.Search} in the tests):
    minimum makespan is 2, and no 2-step schedule uses fewer than 5
    moves; minimum bandwidth is the total deficit 4, achievable only
    in 3 timesteps.  The natural flood-style minimum-time schedule —
    the kind the paper's figure depicts — stages both of [r]'s
    remaining tokens through [a] and uses 6 moves
    ({!min_time_schedule}); the caption's exact (6, 2) vs (4, 3)
    trade-off is thus reproduced by the witnesses below, with the
    additional fact that a cleverer 2-step schedule can save one of
    the six moves. *)

val instance : unit -> Instance.t

val min_time_schedule : unit -> Schedule.t
(** A witness schedule: 2 steps, 6 moves. *)

val min_bandwidth_schedule : unit -> Schedule.t
(** A witness schedule: 4 moves, 3 steps. *)
