(** Post-hoc schedule pruning (§5.1).

    "Once a satisfying schedule is found, we can go back and prune any
    unnecessary moves, reducing the bandwidth consumption.  Pruning
    first removes all moves that deliver a token repeatedly to the same
    vertex, and then works back from the last move to the first,
    removing moves that deliver tokens which were never used by the
    destination vertex."

    Pass 1 keeps, for every (vertex, token), only the chronologically
    first delivery (and drops deliveries of tokens the vertex started
    with).  Pass 2 walks timesteps backwards and drops a kept delivery
    when the destination neither wants the token nor forwards it in
    any retained later move.

    Pruning preserves validity and success and never increases either
    bandwidth or makespan (trailing steps that become empty are
    dropped). *)

val prune : Instance.t -> Schedule.t -> Schedule.t
