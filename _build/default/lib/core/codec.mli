(** Plain-text serialisation of instances and schedules.

    A line-oriented format meant for reproducibility: dump a generated
    workload and a solver's schedule, reload them elsewhere, revalidate.
    Grammar (one record per line, [#] comments ignored):

    {v
    instance <vertex-count> <token-count>
    arc <src> <dst> <capacity>
    have <vertex> <token> ...
    want <vertex> <token> ...
    schedule
    step <s1> ... ; each move as src>dst:token
    v}

    Encoding is lossless; decoding validates ranges through the normal
    constructors, so a corrupt file fails loudly. *)

val instance_to_string : Instance.t -> string
val instance_of_string : string -> (Instance.t, string) result

val schedule_to_string : Schedule.t -> string
val schedule_of_string : string -> (Schedule.t, string) result
