(** Distribution schedules (§3.1): a sequence of timesteps, each a set
    of simultaneous moves.

    The functions [s_i : E -> 2^T] of the paper are represented as the
    list of moves of step [i]; within a step the (arc, token) pairs
    must be distinct (set semantics), which {!Validate.check}
    enforces. *)

type t

val empty : t
val of_steps : Move.t list list -> t
val steps : t -> Move.t list list
(** Steps in temporal order. *)

val length : t -> int
(** Number of timesteps ([t] in the paper); trailing empty steps count. *)

val move_count : t -> int
(** Total bandwidth consumption. *)

val step : t -> int -> Move.t list
(** Moves of step [i] (empty when out of range). *)

val append_step : t -> Move.t list -> t
val drop_trailing_empty : t -> t
(** Removes empty steps at the tail (pruning can empty final steps). *)

val moves_on_arc : t -> src:int -> dst:int -> (int * int) list
(** [(step, token)] pairs carried by one arc, in order. *)

val concat_map_moves : t -> (step:int -> Move.t -> 'a option) -> 'a list
val iter_moves : t -> (step:int -> Move.t -> unit) -> unit

val pp : Format.formatter -> t -> unit
