open Ocd_prelude
open Ocd_graph

type t = {
  graph : Digraph.t;
  token_count : int;
  have : Bitset.t array;
  want : Bitset.t array;
}

let validate inst =
  let n = Digraph.vertex_count inst.graph in
  if Array.length inst.have <> n || Array.length inst.want <> n then
    invalid_arg "Instance: have/want arrays must cover every vertex";
  let check_set s =
    if Bitset.capacity s <> inst.token_count then
      invalid_arg "Instance: token set capacity mismatch"
  in
  Array.iter check_set inst.have;
  Array.iter check_set inst.want;
  (* Every token must start somewhere or the problem is vacuous. *)
  let held = Bitset.create inst.token_count in
  Array.iter (fun s -> Bitset.union_into held s) inst.have;
  if Bitset.cardinal held <> inst.token_count then
    invalid_arg "Instance: some token has no initial holder";
  inst

let make_bitsets ~graph ~token_count ~have ~want =
  validate
    {
      graph;
      token_count;
      have = Array.map Bitset.copy have;
      want = Array.map Bitset.copy want;
    }

let make ~graph ~token_count ~have ~want =
  if token_count < 0 then invalid_arg "Instance.make: negative token count";
  let n = Digraph.vertex_count graph in
  let build assoc =
    let sets = Array.init n (fun _ -> Bitset.create token_count) in
    let fill (v, tokens) =
      if v < 0 || v >= n then invalid_arg "Instance.make: vertex out of range";
      List.iter (Bitset.add sets.(v)) tokens
    in
    List.iter fill assoc;
    sets
  in
  validate { graph; token_count; have = build have; want = build want }

let vertex_count inst = Digraph.vertex_count inst.graph

let vertices_with sets token =
  let acc = ref [] in
  Array.iteri (fun v s -> if Bitset.mem s token then acc := v :: !acc) sets;
  List.rev !acc

let holders inst token = vertices_with inst.have token
let wanters inst token = vertices_with inst.want token

let deficit inst v = Bitset.diff inst.want.(v) inst.have.(v)

let total_deficit inst =
  let acc = ref 0 in
  for v = 0 to vertex_count inst - 1 do
    acc := !acc + Bitset.cardinal (deficit inst v)
  done;
  !acc

let trivially_satisfied inst = total_deficit inst = 0

let satisfiable inst =
  (* For each token, multi-source BFS from its holders must reach every
     wanter. *)
  let ok = ref true in
  for token = 0 to inst.token_count - 1 do
    if !ok then begin
      match holders inst token with
      | [] -> ok := false
      | sources ->
        let dist = Ocd_graph.Traversal.bfs_levels_multi inst.graph sources in
        List.iter (fun v -> if dist.(v) < 0 then ok := false) (wanters inst token)
    end
  done;
  !ok

let pp ppf inst =
  Format.fprintf ppf "instance(n=%d, m=%d, deficit=%d)"
    (vertex_count inst) inst.token_count (total_deficit inst)
