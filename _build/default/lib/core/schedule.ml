type t = Move.t list list
(* Head = first timestep.  Kept abstract so the representation can
   change to arrays if profiles demand it. *)

let empty = []
let of_steps steps = steps
let steps t = t
let length = List.length

let move_count t = List.fold_left (fun acc ms -> acc + List.length ms) 0 t

let step t i = match List.nth_opt t i with Some ms -> ms | None -> []

let append_step t ms = t @ [ ms ]

let drop_trailing_empty t =
  let rec strip = function [] :: rest -> strip rest | l -> l in
  List.rev (strip (List.rev t))

let iter_moves t f =
  List.iteri (fun step ms -> List.iter (fun m -> f ~step m) ms) t

let concat_map_moves t f =
  let acc = ref [] in
  iter_moves t (fun ~step m ->
      match f ~step m with Some x -> acc := x :: !acc | None -> ());
  List.rev !acc

let moves_on_arc t ~src ~dst =
  concat_map_moves t (fun ~step (m : Move.t) ->
      if m.src = src && m.dst = dst then Some (step, m.token) else None)

let pp ppf t =
  List.iteri
    (fun i ms ->
      Format.fprintf ppf "@[<h>step %d:" i;
      List.iter (fun m -> Format.fprintf ppf " %a" Move.pp m) ms;
      Format.fprintf ppf "@]@.")
    t
