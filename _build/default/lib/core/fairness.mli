(** Contribution fairness metrics.

    The paper's introduction lists fairness — "ensuring that nodes
    contribute roughly in proportion to one another" — among the goals
    systems optimise besides speed and bandwidth.  These metrics
    quantify how a schedule spreads the forwarding load:

    - per-vertex upload/download counts;
    - the contribution ratio (uploads / downloads), the BitTorrent
      share-ratio notion;
    - Jain's fairness index over uploads,
      [(Σx)² / (n · Σx²)] ∈ [1/n, 1], 1 = perfectly even. *)

type t = {
  uploads : int array;
  downloads : int array;
  jain_index : float;
      (** over the uploads of vertices that downloaded anything (pure
          sources excluded — they have nothing to reciprocate) *)
}

val of_schedule : Instance.t -> Schedule.t -> t

val contribution_ratio : t -> int -> float
(** [uploads/downloads] for one vertex; [infinity] for pure uploaders,
    0 for pure leechers, 1 for vertices that moved nothing. *)
