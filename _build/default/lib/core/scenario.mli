(** Workload builders for the paper's evaluation scenarios (§5.2–5.3).

    Each builder returns the instance plus the metadata needed by the
    figures (file → token-set map, the source vertices, receiver
    sets). *)

open Ocd_prelude

type file = { file_id : int; tokens : int list; receivers : int list }

type t = {
  instance : Instance.t;
  sources : int list;
  files : file list;
}

val single_file :
  Prng.t ->
  graph:Ocd_graph.Digraph.t ->
  tokens:int ->
  ?source:int ->
  unit ->
  t
(** §5.2 "graph size" workload: one source (random unless given) holds
    a single file of [tokens] tokens; every other vertex wants the
    whole file. *)

val receiver_density :
  Prng.t ->
  graph:Ocd_graph.Digraph.t ->
  tokens:int ->
  threshold:float ->
  ?source:int ->
  unit ->
  t
(** §5.2 "receiver density" workload: each non-source vertex draws a
    uniform score in [\[0,1)] and joins the want set when
    [score < threshold]; [threshold = 1] recovers {!single_file}.
    Vertices outside the want set participate as relays only. *)

val subdivide_files :
  Prng.t ->
  graph:Ocd_graph.Digraph.t ->
  total_tokens:int ->
  files:int ->
  ?multi_sender:bool ->
  ?source:int ->
  unit ->
  t
(** §5.3 workload: [total_tokens] tokens divided into [files] equal
    contiguous files; the non-source vertices are partitioned randomly
    into [files] groups, group [i] wanting exactly file [i].  With
    [multi_sender] (default false) each file instead starts at a
    random vertex that does not want it (§5.3 "multiple senders");
    otherwise the single [source] holds everything.
    @raise Invalid_argument unless [files] divides [total_tokens] and
    [files <= vertex count - 1]. *)
