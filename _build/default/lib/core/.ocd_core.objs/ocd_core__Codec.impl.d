lib/core/codec.ml: Array Bitset Buffer Digraph Instance List Move Ocd_graph Ocd_prelude Printf Result Schedule String
