lib/core/prune.mli: Instance Schedule
