lib/core/bounds.mli: Bitset Instance Ocd_prelude
