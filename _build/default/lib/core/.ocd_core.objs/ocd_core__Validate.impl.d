lib/core/validate.ml: Array Bitset Digraph Format Hashtbl Instance List Move Ocd_graph Ocd_prelude Option Schedule
