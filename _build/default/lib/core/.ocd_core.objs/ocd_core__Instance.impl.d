lib/core/instance.ml: Array Bitset Digraph Format List Ocd_graph Ocd_prelude
