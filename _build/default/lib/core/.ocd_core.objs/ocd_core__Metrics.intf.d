lib/core/metrics.mli: Format Instance Schedule
