lib/core/schedule.ml: Format List Move
