lib/core/move.mli: Format
