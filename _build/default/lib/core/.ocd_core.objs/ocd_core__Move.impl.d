lib/core/move.ml: Format Stdlib
