lib/core/codec.mli: Instance Schedule
