lib/core/fairness.ml: Array Instance List Move Schedule
