lib/core/figure1.mli: Instance Schedule
