lib/core/instance.mli: Bitset Format Ocd_graph Ocd_prelude
