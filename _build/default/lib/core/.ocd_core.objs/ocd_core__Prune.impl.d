lib/core/prune.ml: Array Bitset Hashtbl Instance List Move Ocd_prelude Schedule
