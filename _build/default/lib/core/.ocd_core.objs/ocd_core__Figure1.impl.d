lib/core/figure1.ml: Digraph Instance Move Ocd_graph Schedule
