lib/core/scenario.ml: Array Digraph Instance List Ocd_graph Ocd_prelude Order Prng
