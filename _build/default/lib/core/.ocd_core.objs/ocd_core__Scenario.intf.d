lib/core/scenario.mli: Instance Ocd_graph Ocd_prelude Prng
