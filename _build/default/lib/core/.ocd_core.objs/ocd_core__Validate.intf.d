lib/core/validate.mli: Format Instance Move Ocd_prelude Schedule
