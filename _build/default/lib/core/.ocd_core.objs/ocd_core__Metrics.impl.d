lib/core/metrics.ml: Array Bitset Format Instance List Ocd_prelude Prune Schedule Stats Validate
