lib/core/schedule.mli: Format Move
