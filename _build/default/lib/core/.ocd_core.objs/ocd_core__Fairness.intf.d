lib/core/fairness.mli: Instance Schedule
