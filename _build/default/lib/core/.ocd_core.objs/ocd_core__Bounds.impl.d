lib/core/bounds.ml: Array Bitset Digraph Instance List Maxflow Ocd_graph Ocd_prelude Pqueue
