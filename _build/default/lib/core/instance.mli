(** OCD problem instances — the §3.1 model.

    An instance is a simple weighted digraph [G = (V, E)], a token set
    [T = \[0, token_count)], and the two functions [h : V -> 2^T]
    (initial possession) and [w : V -> 2^T] (desired tokens).  Files
    are represented as sets of tokens, per the paper's unit-token
    normalisation. *)

open Ocd_prelude

type t = private {
  graph : Ocd_graph.Digraph.t;
  token_count : int;
  have : Bitset.t array;  (** [h(v)]; index = vertex *)
  want : Bitset.t array;  (** [w(v)] *)
}

val make :
  graph:Ocd_graph.Digraph.t ->
  token_count:int ->
  have:(Ocd_graph.Digraph.vertex * int list) list ->
  want:(Ocd_graph.Digraph.vertex * int list) list ->
  t
(** Builds an instance from per-vertex token lists (vertices absent
    from a list hold/want nothing).  Checks that every token is
    initially held by at least one vertex — otherwise no schedule can
    be successful — and that vertex/token ids are in range. *)

val make_bitsets :
  graph:Ocd_graph.Digraph.t ->
  token_count:int ->
  have:Bitset.t array ->
  want:Bitset.t array ->
  t
(** As {!make} from pre-built bitsets (copied defensively). *)

val vertex_count : t -> int

val holders : t -> int -> Ocd_graph.Digraph.vertex list
(** Vertices with token [t] in their initial [have] set. *)

val wanters : t -> int -> Ocd_graph.Digraph.vertex list

val deficit : t -> Ocd_graph.Digraph.vertex -> Bitset.t
(** [w(v) \ h(v)]: the tokens the vertex still needs; fresh set. *)

val total_deficit : t -> int
(** Σ_v |w(v) \ h(v)| — the §5.1 remaining-bandwidth lower bound at
    time zero. *)

val trivially_satisfied : t -> bool

val satisfiable : t -> bool
(** True when every wanted token has a holder from which the wanter is
    reachable (necessary and sufficient in this loss-free model, since
    capacities are at least 1). *)

val pp : Format.formatter -> t -> unit
