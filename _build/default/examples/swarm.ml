(* A BitTorrent-like swarm: many files, each seeded at a different
   vertex, receivers split across files (the paper's §5.3
   multiple-senders workload).  Compares the swarm-style heuristics
   with the single-tree baseline that pre-mesh systems used, and shows
   why the paper's related-work section moved from trees to meshes.

   Run with:  dune exec examples/swarm.exe *)

open Ocd_core
open Ocd_prelude

let () =
  let rng = Prng.create ~seed:99 in
  let graph = Ocd_topology.Random_graph.erdos_renyi rng ~n:120 () in
  (* 8 files of 16 tokens, each seeded at a random vertex that does
     not want it; receivers partitioned across files. *)
  let scenario =
    Scenario.subdivide_files rng ~graph ~total_tokens:128 ~files:8
      ~multi_sender:true ()
  in
  let inst = scenario.Scenario.instance in
  Printf.printf "swarm: %d peers, %d files x %d tokens, %d seeders\n"
    (Instance.vertex_count inst)
    (List.length scenario.Scenario.files)
    (List.length (List.hd scenario.Scenario.files).Scenario.tokens)
    (List.length scenario.Scenario.sources);
  Printf.printf "total demand: %d token deliveries (lower bound)\n\n"
    (Instance.total_deficit inst);

  let contenders =
    Ocd_heuristics.Registry.all
    @ [ Ocd_baselines.Fast_replica.strategy ();
        Ocd_baselines.Tree_push.strategy () ]
  in
  Printf.printf "%-14s %10s %10s %10s %12s\n" "strategy" "makespan" "bandwidth"
    "pruned" "mean-finish";
  List.iter
    (fun strategy ->
      let run = Ocd_engine.Engine.run ~strategy ~seed:11 inst in
      match run.Ocd_engine.Engine.outcome with
      | Ocd_engine.Engine.Completed ->
        let m = run.Ocd_engine.Engine.metrics in
        Printf.printf "%-14s %10d %10d %10d %12.1f\n"
          run.Ocd_engine.Engine.strategy_name m.Metrics.makespan
          m.Metrics.bandwidth m.Metrics.pruned_bandwidth
          (Metrics.mean_completion m)
      | Ocd_engine.Engine.Stalled _ | Ocd_engine.Engine.Step_limit ->
        (* Single-tree push is a single-source design: the 7 files not
           held at its root can never flow down its tree.  That is the
           structural limitation that pushed the field toward meshes. *)
        Printf.printf "%-14s %10s  (single-source design cannot serve a swarm)\n"
          run.Ocd_engine.Engine.strategy_name "n/a")
    contenders;

  (* Per-file completion under the local (rarest-random) heuristic:
     rarest-first keeps stripes balanced across the swarm. *)
  let run =
    Ocd_engine.Engine.completed_exn
      (Ocd_engine.Engine.run ~strategy:Ocd_heuristics.Local_rarest.strategy
         ~seed:11 inst)
  in
  let m = run.Ocd_engine.Engine.metrics in
  Printf.printf "\nper-file completion (local heuristic):\n";
  List.iter
    (fun f ->
      let finish =
        List.fold_left
          (fun acc v -> max acc m.Metrics.completion_times.(v))
          0 f.Scenario.receivers
      in
      Printf.printf "  file %d: %d receivers, done at step %d\n"
        f.Scenario.file_id
        (List.length f.Scenario.receivers)
        finish)
    scenario.Scenario.files
