(* NP-hardness in action: the appendix reduction from Dominating Set
   to FOCD (Figure 7 / Theorem 5).  Builds the reduced instance for a
   small graph, shows the constructive 2-step schedule derived from a
   dominating set, and checks the equivalence in both directions.

   Run with:  dune exec examples/hardness.exe *)

open Ocd_core

let () =
  (* A 6-cycle: minimum dominating set size 2. *)
  let n = 6 in
  let g =
    Ocd_graph.Digraph.of_edges ~vertex_count:n
      (List.init n (fun i -> (i, (i + 1) mod n, 1)))
  in
  let dom = Ocd_graph.Dominating.minimum g in
  Printf.printf "input graph: 6-cycle; minimum dominating set = {%s} (size %d)\n\n"
    (String.concat ", " (List.map string_of_int dom))
    (List.length dom);

  List.iter
    (fun k ->
      let inst = Ocd_exact.Reduction.instance g ~k in
      let two_step = Ocd_exact.Reduction.two_step_solvable g ~k in
      let ds = Ocd_graph.Dominating.exists_of_size g k in
      Printf.printf
        "k = %d: reduced FOCD instance has %d vertices, %d tokens; DS<=k: %b; \
         2-step solvable: %b %s\n"
        k
        (Instance.vertex_count inst)
        inst.Instance.token_count ds two_step
        (if ds = two_step then "(agree)" else "(MISMATCH!)"))
    [ 1; 2; 3 ];

  print_newline ();
  (* The constructive direction: dominating set -> 2-step schedule. *)
  let k = List.length dom in
  let inst = Ocd_exact.Reduction.instance g ~k in
  let schedule = Ocd_exact.Reduction.schedule_of_dominating_set g ~k ~dominating:dom in
  Printf.printf "constructive 2-step schedule from the dominating set (k = %d):\n" k;
  List.iteri
    (fun i moves ->
      Printf.printf "  step %d (%d moves):" i (List.length moves);
      List.iteri (fun j m -> if j < 8 then Printf.printf " %d->%d:%d" m.Move.src m.Move.dst m.Move.token) moves;
      if List.length moves > 8 then print_string " ...";
      print_newline ())
    (Schedule.steps schedule);
  (match Validate.check_successful inst schedule with
  | Ok () -> print_endline "  -> validated: every want satisfied in 2 steps"
  | Error e -> Format.printf "  -> INVALID: %a@." Validate.pp_error e);

  print_newline ();
  Printf.printf
    "so deciding \"FOCD in <= 2 steps\" on such instances decides Dominating \
     Set — FOCD is NP-complete (Theorem 3).\n"
