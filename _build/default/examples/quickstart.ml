(* Quickstart: build an OCD instance, run every heuristic, inspect the
   schedules and their quality against the lower bounds.

   Run with:  dune exec examples/quickstart.exe *)

open Ocd_core
open Ocd_prelude

let () =
  (* 1. A seeded random overlay: 40 vertices, the paper's 2 ln n / n
     edge probability, capacities uniform in [3, 15]. *)
  let rng = Prng.create ~seed:2025 in
  let graph = Ocd_topology.Random_graph.erdos_renyi rng ~n:40 () in
  Printf.printf "overlay: %d vertices, %d arcs, diameter %d\n\n"
    (Ocd_graph.Digraph.vertex_count graph)
    (Ocd_graph.Digraph.arc_count graph)
    (Ocd_graph.Paths.diameter graph);

  (* 2. A workload: one source holds a 30-token file, everyone wants
     it (the paper's §5.2 single-file scenario). *)
  let scenario = Scenario.single_file rng ~graph ~tokens:30 ~source:0 () in
  let inst = scenario.Scenario.instance in
  Printf.printf "workload: %d tokens to deliver; lower bounds: bandwidth >= %d, makespan >= %d\n\n"
    (Instance.total_deficit inst)
    (Bounds.bandwidth_lower_bound inst)
    (Bounds.makespan_lower_bound inst);

  (* 3. Run the five §5.1 heuristics through the simulator.  Every
     schedule is revalidated against the §3.1 constraints before its
     metrics are reported. *)
  Printf.printf "%-12s %10s %10s %10s\n" "strategy" "makespan" "bandwidth" "pruned";
  List.iter
    (fun strategy ->
      let run =
        Ocd_engine.Engine.completed_exn
          (Ocd_engine.Engine.run ~strategy ~seed:7 inst)
      in
      let m = run.Ocd_engine.Engine.metrics in
      Printf.printf "%-12s %10d %10d %10d\n" run.Ocd_engine.Engine.strategy_name
        m.Metrics.makespan m.Metrics.bandwidth m.Metrics.pruned_bandwidth)
    Ocd_heuristics.Registry.all;

  (* 4. Inspect one schedule's first step in detail. *)
  let run =
    Ocd_engine.Engine.completed_exn
      (Ocd_engine.Engine.run ~strategy:Ocd_heuristics.Local_rarest.strategy
         ~seed:7 inst)
  in
  let first_step = Schedule.step run.Ocd_engine.Engine.schedule 0 in
  Printf.printf "\nlocal heuristic, step 0: %d moves, e.g." (List.length first_step);
  List.iteri
    (fun i m -> if i < 5 then Printf.printf " %d->%d:%d" m.Move.src m.Move.dst m.Move.token)
    first_step;
  print_newline ()
