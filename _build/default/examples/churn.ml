(* Distribution under adverse network conditions: the §6 "changing
   network conditions" and "arrivals and departures" open problems,
   simulated.  A 60-peer swarm downloads a file while background cross
   traffic squeezes links, links flap, and peers churn in and out.

   Run with:  dune exec examples/churn.exe *)

open Ocd_core
open Ocd_prelude
open Ocd_dynamics

let () =
  let rng = Prng.create ~seed:31 in
  let graph = Ocd_topology.Random_graph.erdos_renyi rng ~n:60 () in
  let scenario = Scenario.single_file rng ~graph ~tokens:48 ~source:0 () in
  let inst = scenario.Scenario.instance in
  Printf.printf "swarm of %d peers, %d-token file, lower bound %d steps\n\n"
    (Instance.vertex_count inst) inst.Instance.token_count
    (Bounds.makespan_lower_bound inst);

  let conditions =
    [
      ("calm network", Condition.static);
      ( "light cross traffic",
        Condition.cross_traffic ~seed:1 ~prob:0.3 ~severity:0.5 );
      ( "heavy cross traffic",
        Condition.cross_traffic ~seed:2 ~prob:0.9 ~severity:0.75 );
      ("flapping links", Condition.link_flaps ~seed:3 ~down_prob:0.2 ~up_prob:0.5);
      ( "peer churn",
        Condition.churn ~seed:4 ~protected:[ 0 ] ~leave_prob:0.08
          ~return_prob:0.4 );
    ]
  in
  Printf.printf "%-20s %-10s %10s %10s %8s\n" "condition" "strategy" "makespan"
    "bandwidth" "drops";
  List.iter
    (fun (label, condition) ->
      List.iter
        (fun strategy ->
          let run = Dynamic_engine.run ~condition ~strategy ~seed:5 inst in
          match run.Dynamic_engine.outcome with
          | Ocd_engine.Engine.Completed ->
            Printf.printf "%-20s %-10s %10d %10d %8d\n" label
              run.Dynamic_engine.strategy_name
              run.Dynamic_engine.metrics.Metrics.makespan
              run.Dynamic_engine.metrics.Metrics.bandwidth
              run.Dynamic_engine.dropped_moves
          | _ -> Printf.printf "%-20s %-10s %10s\n" label
                   run.Dynamic_engine.strategy_name "aborted")
        [ Ocd_heuristics.Local_rarest.strategy; Ocd_heuristics.Global_greedy.strategy ])
    conditions;

  print_newline ();
  (* Fairness under churn: who carried the load? *)
  let condition =
    Condition.churn ~seed:4 ~protected:[ 0 ] ~leave_prob:0.08 ~return_prob:0.4
  in
  let run =
    Dynamic_engine.run ~condition
      ~strategy:Ocd_heuristics.Local_rarest.strategy ~seed:5 inst
  in
  let fairness = Fairness.of_schedule inst run.Dynamic_engine.schedule in
  Printf.printf
    "forwarding fairness under churn (local heuristic): Jain index %.3f\n"
    fairness.Fairness.jain_index;
  let busiest = ref 0 in
  Array.iteri
    (fun v u -> if u > fairness.Fairness.uploads.(!busiest) then busiest := v)
    fairness.Fairness.uploads;
  Printf.printf "busiest relay: vertex %d with %d uploads (ratio %.2f)\n"
    !busiest
    fairness.Fairness.uploads.(!busiest)
    (Fairness.contribution_ratio fairness !busiest)
