(* The Figure 1 time/bandwidth tension, end to end: exact optima from
   the combinatorial search AND the §3.4 time-indexed integer program,
   plus the two witness schedules printed move by move.

   Run with:  dune exec examples/tradeoff.exe *)

open Ocd_core

let print_schedule name schedule =
  let metrics = Metrics.of_schedule (Figure1.instance ()) schedule in
  Printf.printf "%s (%d steps, %d moves):\n" name (Schedule.length schedule)
    (Schedule.move_count schedule);
  List.iteri
    (fun i moves ->
      Printf.printf "  step %d:" i;
      List.iter (fun m -> Printf.printf " %d->%d:%d" m.Move.src m.Move.dst m.Move.token) moves;
      print_newline ())
    (Schedule.steps schedule);
  Printf.printf "  -> makespan %d, bandwidth %d\n\n" metrics.Metrics.makespan
    metrics.Metrics.bandwidth

let () =
  let inst = Figure1.instance () in
  print_endline "Figure 1 instance:";
  print_endline "  vertices: s=0 (source), r=1 (wants {0,1,2}), a=2 (relay), r'=3 (wants {0})";
  print_endline "  arcs: s->r cap 1, s->a cap 2, a->r cap 2, s->r' cap 1";
  print_newline ();

  print_schedule "minimum-time witness" (Figure1.min_time_schedule ());
  print_schedule "minimum-bandwidth witness" (Figure1.min_bandwidth_schedule ());

  (* Exact optima: combinatorial search. *)
  let show label = function
    | Ocd_exact.Search.Solved s ->
      Printf.printf "%-34s %d (schedule: %d steps, %d moves)\n" label
        s.Ocd_exact.Search.objective
        (Schedule.length s.Ocd_exact.Search.schedule)
        (Schedule.move_count s.Ocd_exact.Search.schedule)
    | Ocd_exact.Search.Unsatisfiable -> Printf.printf "%-34s unsatisfiable\n" label
    | Ocd_exact.Search.Budget_exceeded -> Printf.printf "%-34s (budget)\n" label
  in
  print_endline "exact optima (state-space search):";
  show "  min makespan (FOCD):" (Ocd_exact.Search.focd inst);
  show "  min bandwidth (EOCD):" (Ocd_exact.Search.eocd inst);
  show "  min bandwidth within 2 steps:" (Ocd_exact.Search.eocd ~horizon:2 inst);
  print_newline ();

  (* Same answers out of the time-indexed integer program. *)
  print_endline "time-indexed IP (sec 3.4, in-house simplex + branch & bound):";
  List.iter
    (fun horizon ->
      match Ocd_exact.Ip_formulation.eocd_at_horizon inst ~horizon with
      | Ocd_exact.Ip_formulation.Solved { bandwidth; _ } ->
        Printf.printf "  horizon %d: min bandwidth %d  (%d variables)\n" horizon
          bandwidth
          (Ocd_exact.Ip_formulation.variable_count inst ~horizon)
      | Ocd_exact.Ip_formulation.Infeasible_at_horizon ->
        Printf.printf "  horizon %d: infeasible\n" horizon
      | Ocd_exact.Ip_formulation.Budget_exceeded ->
        Printf.printf "  horizon %d: budget exceeded\n" horizon)
    [ 1; 2; 3; 4 ]
