(* Rateless coding (§6 "Encoding"): a file of k source blocks expanded
   into n >= k coded tokens; receivers finish as soon as they hold any
   k.  Shows the last-block effect disappearing as redundancy grows.

   Run with:  dune exec examples/coded_swarm.exe *)

open Ocd_prelude

let () =
  let graph =
    Ocd_topology.Random_graph.erdos_renyi (Prng.create ~seed:77) ~n:80 ()
  in
  let required = 24 in
  Printf.printf
    "80 peers; file of %d blocks, coded into n tokens (any %d decode)\n\n"
    required required;
  Printf.printf "%6s %-8s %10s %12s %12s\n" "n" "strategy" "makespan"
    "mean-finish" "bandwidth";
  List.iter
    (fun coded ->
      List.iter
        (fun strategy ->
          let rng = Prng.create ~seed:78 in
          let t =
            Ocd_coding.Coding.single_file rng ~graph ~required ~coded ~source:0
              ()
          in
          let run = Ocd_coding.Coding.run ~strategy ~seed:9 t in
          let finishes =
            Array.to_list run.Ocd_coding.Coding.completion_times
            |> List.filter (fun c -> c >= 0)
            |> List.map float_of_int
          in
          Printf.printf "%6d %-8s %10d %12.1f %12d\n" coded
            run.Ocd_coding.Coding.strategy_name
            run.Ocd_coding.Coding.makespan
            (match finishes with [] -> 0.0 | xs -> Ocd_prelude.Stats.mean xs)
            run.Ocd_coding.Coding.bandwidth)
        [
          Ocd_heuristics.Random_push.strategy;
          Ocd_heuristics.Local_rarest.strategy;
        ])
    [ required; required * 5 / 4; required * 3 / 2; required * 2 ];
  print_newline ();
  print_endline
    "with no redundancy every receiver must chase its exact missing blocks;";
  print_endline
    "with spare coded tokens, whatever arrives next counts toward the k-of-n";
  print_endline "threshold, so completion tails shrink."
