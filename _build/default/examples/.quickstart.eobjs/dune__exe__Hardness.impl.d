examples/hardness.ml: Format Instance List Move Ocd_core Ocd_exact Ocd_graph Printf Schedule String Validate
