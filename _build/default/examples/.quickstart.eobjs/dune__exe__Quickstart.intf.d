examples/quickstart.mli:
