examples/tradeoff.mli:
