examples/coded_swarm.ml: Array List Ocd_coding Ocd_heuristics Ocd_prelude Ocd_topology Printf Prng
