examples/churn.mli:
