examples/coded_swarm.mli:
