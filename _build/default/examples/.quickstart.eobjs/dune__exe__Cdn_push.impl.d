examples/cdn_push.ml: Bounds Instance List Metrics Ocd_core Ocd_engine Ocd_graph Ocd_heuristics Ocd_prelude Ocd_topology Printf Prng Scenario
