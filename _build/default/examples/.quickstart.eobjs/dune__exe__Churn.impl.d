examples/churn.ml: Array Bounds Condition Dynamic_engine Fairness Instance List Metrics Ocd_core Ocd_dynamics Ocd_engine Ocd_heuristics Ocd_prelude Ocd_topology Printf Prng Scenario
