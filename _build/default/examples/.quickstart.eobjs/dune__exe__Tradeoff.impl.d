examples/tradeoff.ml: Figure1 List Metrics Move Ocd_core Ocd_exact Printf Schedule
