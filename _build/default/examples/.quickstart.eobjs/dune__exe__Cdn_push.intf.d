examples/cdn_push.mli:
