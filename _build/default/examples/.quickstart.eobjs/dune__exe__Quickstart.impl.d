examples/quickstart.ml: Bounds Instance List Metrics Move Ocd_core Ocd_engine Ocd_graph Ocd_heuristics Ocd_prelude Ocd_topology Printf Prng Scenario Schedule
