examples/swarm.ml: Array Instance List Metrics Ocd_baselines Ocd_core Ocd_engine Ocd_heuristics Ocd_prelude Ocd_topology Printf Prng Scenario
