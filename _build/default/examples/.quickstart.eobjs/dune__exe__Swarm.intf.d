examples/swarm.mli:
