examples/hardness.mli:
