(* CDN push on a transit-stub topology: a single origin pushes a file
   to a *subset* of edge nodes (the paper's §5.2 receiver-density
   scenario on its GT-ITM-style graphs).  Demonstrates the bandwidth
   heuristic's headline property: flooding heuristics pay the same
   bandwidth no matter how few receivers there are; the bandwidth
   heuristic's cost scales with actual demand.

   Run with:  dune exec examples/cdn_push.exe *)

open Ocd_core
open Ocd_prelude

let () =
  let rng = Prng.create ~seed:7 in
  let params = Ocd_topology.Transit_stub.default_params in
  let graph = Ocd_topology.Transit_stub.generate rng params in
  Printf.printf
    "transit-stub network: %d vertices (%d transit), %d arcs, diameter %d\n\n"
    (Ocd_graph.Digraph.vertex_count graph)
    (params.Ocd_topology.Transit_stub.transit_domains
    * params.Ocd_topology.Transit_stub.transit_nodes)
    (Ocd_graph.Digraph.arc_count graph)
    (Ocd_graph.Paths.diameter graph);

  Printf.printf "%-10s %-12s %10s %10s %8s\n" "density" "strategy" "bandwidth"
    "makespan" "bw_lb";
  List.iter
    (fun threshold ->
      let rng = Prng.create ~seed:(int_of_float (threshold *. 1000.0)) in
      let scenario =
        Scenario.receiver_density rng ~graph ~tokens:64 ~threshold ~source:0 ()
      in
      let inst = scenario.Scenario.instance in
      if not (Instance.trivially_satisfied inst) then
        List.iter
          (fun strategy ->
            let run =
              Ocd_engine.Engine.completed_exn
                (Ocd_engine.Engine.run ~strategy ~seed:3 inst)
            in
            let m = run.Ocd_engine.Engine.metrics in
            Printf.printf "%-10.2f %-12s %10d %10d %8d\n" threshold
              run.Ocd_engine.Engine.strategy_name m.Metrics.bandwidth
              m.Metrics.makespan
              (Bounds.bandwidth_lower_bound inst))
          [
            Ocd_heuristics.Local_rarest.strategy;
            Ocd_heuristics.Bandwidth_saver.strategy;
          ])
    [ 0.1; 0.3; 0.6; 1.0 ];

  print_newline ();
  print_endline
    "note how 'local' (flooding) bandwidth is flat across densities while";
  print_endline "'bandwidth' tracks the lower bound — Figure 4's story."
