(* Tests for the extension modules: Maxflow, exact one-step check,
   Fairness, Codec, Hybrid. *)

open Ocd_prelude
open Ocd_core
open Ocd_graph

let qtest = QCheck_alcotest.to_alcotest

let mv src dst token = { Move.src; dst; token }

(* ------------------------------------------------------------------ *)
(* Maxflow                                                             *)
(* ------------------------------------------------------------------ *)

let test_maxflow_single_path () =
  let f = Maxflow.create ~node_count:3 in
  Maxflow.add_edge f ~src:0 ~dst:1 ~capacity:5;
  Maxflow.add_edge f ~src:1 ~dst:2 ~capacity:3;
  Alcotest.(check int) "bottleneck" 3 (Maxflow.max_flow f ~source:0 ~sink:2)

let test_maxflow_parallel_paths () =
  let f = Maxflow.create ~node_count:4 in
  Maxflow.add_edge f ~src:0 ~dst:1 ~capacity:2;
  Maxflow.add_edge f ~src:0 ~dst:2 ~capacity:3;
  Maxflow.add_edge f ~src:1 ~dst:3 ~capacity:2;
  Maxflow.add_edge f ~src:2 ~dst:3 ~capacity:3;
  Alcotest.(check int) "sum of paths" 5 (Maxflow.max_flow f ~source:0 ~sink:3)

let test_maxflow_needs_augmenting_path () =
  (* Classic diamond where a greedy first path must be partially
     undone through the residual arc. *)
  let f = Maxflow.create ~node_count:4 in
  Maxflow.add_edge f ~src:0 ~dst:1 ~capacity:1;
  Maxflow.add_edge f ~src:0 ~dst:2 ~capacity:1;
  Maxflow.add_edge f ~src:1 ~dst:2 ~capacity:1;
  Maxflow.add_edge f ~src:1 ~dst:3 ~capacity:1;
  Maxflow.add_edge f ~src:2 ~dst:3 ~capacity:1;
  Alcotest.(check int) "flow 2" 2 (Maxflow.max_flow f ~source:0 ~sink:3)

let test_maxflow_disconnected () =
  let f = Maxflow.create ~node_count:3 in
  Maxflow.add_edge f ~src:0 ~dst:1 ~capacity:4;
  Alcotest.(check int) "no path" 0 (Maxflow.max_flow f ~source:0 ~sink:2)

let test_maxflow_flow_decomposition () =
  let f = Maxflow.create ~node_count:4 in
  Maxflow.add_edge f ~src:0 ~dst:1 ~capacity:2;
  Maxflow.add_edge f ~src:1 ~dst:3 ~capacity:2;
  Maxflow.add_edge f ~src:0 ~dst:2 ~capacity:1;
  Maxflow.add_edge f ~src:2 ~dst:3 ~capacity:1;
  let total = Maxflow.max_flow f ~source:0 ~sink:3 in
  Alcotest.(check int) "flow 3" 3 total;
  let flows = Maxflow.flow_on_edges f in
  (* conservation at inner nodes *)
  let inflow v =
    List.fold_left (fun a (_, d, fl) -> if d = v then a + fl else a) 0 flows
  in
  let outflow v =
    List.fold_left (fun a (s, _, fl) -> if s = v then a + fl else a) 0 flows
  in
  Alcotest.(check int) "conservation at 1" (inflow 1) (outflow 1);
  Alcotest.(check int) "conservation at 2" (inflow 2) (outflow 2);
  Alcotest.(check int) "source outflow" total (outflow 0)

let test_maxflow_invalid () =
  let f = Maxflow.create ~node_count:2 in
  Alcotest.check_raises "range"
    (Invalid_argument "Maxflow.add_edge: node out of range") (fun () ->
      Maxflow.add_edge f ~src:0 ~dst:2 ~capacity:1);
  Alcotest.check_raises "source=sink"
    (Invalid_argument "Maxflow.max_flow: source = sink") (fun () ->
      ignore (Maxflow.max_flow f ~source:0 ~sink:0))

(* Property: max flow on random unit-capacity DAGs equals the number
   of arc-disjoint paths, which is at most min(outdeg(s), indeg(t)). *)
let prop_maxflow_bounded_by_degree_cut =
  QCheck.Test.make ~name:"maxflow bounded by source/sink degree cuts" ~count:80
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 4 + Prng.int rng 6 in
      let f = Maxflow.create ~node_count:n in
      let out0 = ref 0 and into_sink = ref 0 in
      let sink = n - 1 in
      for u = 0 to n - 2 do
        for v = u + 1 to n - 1 do
          if Prng.bernoulli rng 0.5 then begin
            let c = 1 + Prng.int rng 4 in
            Maxflow.add_edge f ~src:u ~dst:v ~capacity:c;
            if u = 0 then out0 := !out0 + c;
            if v = sink then into_sink := !into_sink + c
          end
        done
      done;
      let flow = Maxflow.max_flow f ~source:0 ~sink in
      flow >= 0 && flow <= min !out0 !into_sink)

(* ------------------------------------------------------------------ *)
(* Bounds.one_step_exact                                               *)
(* ------------------------------------------------------------------ *)

let test_one_step_exact_gap () =
  (* Tokens 0 and 1 are both only behind a capacity-1 arc: the
     aggregate check passes but the exact assignment cannot. *)
  let graph =
    Digraph.of_arcs ~vertex_count:4
      [
        { Digraph.src = 1; dst = 0; capacity = 1 };
        { Digraph.src = 2; dst = 0; capacity = 5 };
        { Digraph.src = 3; dst = 0; capacity = 5 };
      ]
  in
  let inst =
    Instance.make ~graph ~token_count:3
      ~have:[ (1, [ 0; 1 ]); (2, [ 2 ]); (3, [ 2 ]) ]
      ~want:[ (0, [ 0; 1; 2 ]) ]
  in
  Alcotest.(check bool) "aggregate check passes" true
    (Bounds.one_step_feasible inst ~have:inst.Instance.have);
  Alcotest.(check bool) "exact check refutes" false
    (Bounds.one_step_exact inst ~have:inst.Instance.have)

let test_one_step_exact_feasible () =
  let graph =
    Digraph.of_arcs ~vertex_count:3
      [
        { Digraph.src = 1; dst = 0; capacity = 1 };
        { Digraph.src = 2; dst = 0; capacity = 1 };
      ]
  in
  let inst =
    Instance.make ~graph ~token_count:2
      ~have:[ (1, [ 0; 1 ]); (2, [ 1 ]) ]
      ~want:[ (0, [ 0; 1 ]) ]
  in
  Alcotest.(check bool) "assignable" true
    (Bounds.one_step_exact inst ~have:inst.Instance.have)

let test_one_step_exact_satisfied () =
  let graph = Digraph.of_edges ~vertex_count:2 [ (0, 1, 1) ] in
  let inst =
    Instance.make ~graph ~token_count:1 ~have:[ (0, [ 0 ]) ] ~want:[ (0, [ 0 ]) ]
  in
  Alcotest.(check bool) "vacuously true" true
    (Bounds.one_step_exact inst ~have:inst.Instance.have)

let prop_one_step_exact_implies_feasible =
  QCheck.Test.make ~name:"one_step_exact implies one_step_feasible" ~count:60
    QCheck.(int_range 0 3_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 4 + Prng.int rng 8 in
      let g = Ocd_topology.Random_graph.erdos_renyi rng ~n ~p:0.4 () in
      let tokens = 1 + Prng.int rng 5 in
      let inst =
        (Scenario.single_file rng ~graph:g ~tokens ()).Scenario.instance
      in
      (not (Bounds.one_step_exact inst ~have:inst.Instance.have))
      || Bounds.one_step_feasible inst ~have:inst.Instance.have)

(* ------------------------------------------------------------------ *)
(* Fairness                                                            *)
(* ------------------------------------------------------------------ *)

let line_instance () =
  let graph =
    Digraph.of_arcs ~vertex_count:3
      [
        { Digraph.src = 0; dst = 1; capacity = 2 };
        { Digraph.src = 1; dst = 2; capacity = 2 };
      ]
  in
  Instance.make ~graph ~token_count:2 ~have:[ (0, [ 0; 1 ]) ]
    ~want:[ (2, [ 0; 1 ]) ]

let test_fairness_counts () =
  let s = Schedule.of_steps [ [ mv 0 1 0; mv 0 1 1 ]; [ mv 1 2 0; mv 1 2 1 ] ] in
  let f = Fairness.of_schedule (line_instance ()) s in
  Alcotest.(check (array int)) "uploads" [| 2; 2; 0 |] f.Fairness.uploads;
  Alcotest.(check (array int)) "downloads" [| 0; 2; 2 |] f.Fairness.downloads;
  Alcotest.(check (float 1e-9)) "relay ratio" 1.0
    (Fairness.contribution_ratio f 1);
  Alcotest.(check (float 1e-9)) "leech ratio" 0.0
    (Fairness.contribution_ratio f 2);
  Alcotest.(check bool) "source ratio infinite" true
    (Fairness.contribution_ratio f 0 = infinity)

let test_fairness_jain_perfect () =
  (* Two participants with equal uploads: index 1. *)
  let s = Schedule.of_steps [ [ mv 0 1 0; mv 0 1 1 ]; [ mv 1 2 0; mv 1 2 1 ] ] in
  let graph =
    Digraph.of_arcs ~vertex_count:4
      [
        { Digraph.src = 0; dst = 1; capacity = 2 };
        { Digraph.src = 1; dst = 2; capacity = 2 };
        { Digraph.src = 2; dst = 3; capacity = 2 };
      ]
  in
  let inst =
    Instance.make ~graph ~token_count:2 ~have:[ (0, [ 0; 1 ]) ]
      ~want:[ (3, [ 0; 1 ]) ]
  in
  let s = Schedule.of_steps (Schedule.steps s @ [ [ mv 2 3 0; mv 2 3 1 ] ]) in
  let f = Fairness.of_schedule inst s in
  (* participants (downloaders) are 1, 2, 3 with uploads 2, 2, 0:
     (2+2+0)² / (3·(4+4+0)) = 2/3 *)
  Alcotest.(check (float 1e-9)) "jain over participants" (2.0 /. 3.0)
    f.Fairness.jain_index

let test_fairness_jain_skewed () =
  (* One relay does all the work, the other none: index = 1/2. *)
  let graph =
    Digraph.of_arcs ~vertex_count:4
      [
        { Digraph.src = 0; dst = 1; capacity = 4 };
        { Digraph.src = 0; dst = 2; capacity = 4 };
        { Digraph.src = 1; dst = 3; capacity = 4 };
        { Digraph.src = 2; dst = 3; capacity = 4 };
      ]
  in
  let inst =
    Instance.make ~graph ~token_count:2 ~have:[ (0, [ 0; 1 ]) ]
      ~want:[ (3, [ 0; 1 ]); (1, [ 0; 1 ]); (2, [ 0; 1 ]) ]
  in
  let s =
    Schedule.of_steps
      [
        [ mv 0 1 0; mv 0 1 1; mv 0 2 0; mv 0 2 1 ];
        [ mv 1 3 0; mv 1 3 1 ];
      ]
  in
  let f = Fairness.of_schedule inst s in
  Alcotest.(check (float 1e-9)) "jain = (2+0+0)^2/(3*4)... participants 1,2,3"
    (4.0 /. (3.0 *. 4.0))
    f.Fairness.jain_index

let prop_fairness_jain_in_range =
  QCheck.Test.make ~name:"jain index within (0, 1]" ~count:40
    QCheck.(int_range 0 2_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let g = Ocd_topology.Random_graph.erdos_renyi rng ~n:15 ~p:0.4 () in
      let inst = (Scenario.single_file rng ~graph:g ~tokens:5 ()).Scenario.instance in
      let run =
        Ocd_engine.Engine.completed_exn
          (Ocd_engine.Engine.run ~strategy:Ocd_heuristics.Random_push.strategy
             ~seed inst)
      in
      let f = Fairness.of_schedule inst run.Ocd_engine.Engine.schedule in
      f.Fairness.jain_index > 0.0 && f.Fairness.jain_index <= 1.0 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_instance_roundtrip () =
  let inst = line_instance () in
  match Codec.instance_of_string (Codec.instance_to_string inst) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok inst' ->
    Alcotest.(check int) "vertices" (Instance.vertex_count inst)
      (Instance.vertex_count inst');
    Alcotest.(check int) "tokens" inst.Instance.token_count
      inst'.Instance.token_count;
    Alcotest.(check bool) "same haves" true
      (Array.for_all2 Bitset.equal inst.Instance.have inst'.Instance.have);
    Alcotest.(check bool) "same wants" true
      (Array.for_all2 Bitset.equal inst.Instance.want inst'.Instance.want);
    Alcotest.(check bool) "same arcs" true
      (Digraph.arcs inst.Instance.graph = Digraph.arcs inst'.Instance.graph)

let test_codec_schedule_roundtrip () =
  let s = Schedule.of_steps [ [ mv 0 1 0; mv 0 1 1 ]; []; [ mv 1 2 0 ] ] in
  match Codec.schedule_of_string (Codec.schedule_to_string s) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok s' ->
    Alcotest.(check bool) "steps preserved (incl. empty)" true
      (Schedule.steps s = Schedule.steps s')

let test_codec_rejects_garbage () =
  Alcotest.(check bool) "bad header" true
    (Result.is_error (Codec.instance_of_string "nonsense"));
  Alcotest.(check bool) "bad arc" true
    (Result.is_error (Codec.instance_of_string "instance 2 1\narc 0 1\n"));
  Alcotest.(check bool) "bad move" true
    (Result.is_error (Codec.schedule_of_string "schedule\nstep 0-1:2\n"));
  Alcotest.(check bool) "orphan token rejected" true
    (Result.is_error
       (Codec.instance_of_string "instance 2 1\narc 0 1 1\nwant 1 0\n"))

(* Fuzz: the decoders reject arbitrary garbage with Error, never an
   exception. *)
let prop_codec_never_raises =
  QCheck.Test.make ~name:"codec decoders never raise on garbage" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun s ->
      (match Codec.instance_of_string s with Ok _ | Error _ -> true)
      && (match Codec.schedule_of_string s with Ok _ | Error _ -> true))

(* Fuzz with plausible-looking headers so the line parsers get
   exercised past the header check. *)
let structured_garbage_gen =
  QCheck.Gen.(
    let* body =
      list_size (int_range 0 8)
        (oneof
           [
             return "arc 0 1 1";
             return "arc x y z";
             return "have 0 0";
             return "want 9 9";
             return "arc 0 0 1";
             return "arc 0 1 -3";
             return "unknown stuff";
             return "have";
           ])
    in
    return ("instance 2 1\n" ^ String.concat "\n" body))

let prop_codec_structured_garbage =
  QCheck.Test.make ~name:"codec survives structured garbage" ~count:200
    (QCheck.make structured_garbage_gen) (fun s ->
      match Codec.instance_of_string s with Ok _ | Error _ -> true)

let prop_codec_roundtrip_random =
  QCheck.Test.make ~name:"codec roundtrips random instances & schedules"
    ~count:30
    QCheck.(int_range 0 2_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let g = Ocd_topology.Random_graph.erdos_renyi rng ~n:12 ~p:0.4 () in
      let inst = (Scenario.single_file rng ~graph:g ~tokens:4 ()).Scenario.instance in
      let run =
        Ocd_engine.Engine.completed_exn
          (Ocd_engine.Engine.run ~strategy:Ocd_heuristics.Local_rarest.strategy
             ~seed inst)
      in
      let s = run.Ocd_engine.Engine.schedule in
      match
        ( Codec.instance_of_string (Codec.instance_to_string inst),
          Codec.schedule_of_string (Codec.schedule_to_string s) )
      with
      | Ok inst', Ok s' ->
        Schedule.steps s = Schedule.steps s'
        && Validate.check_successful inst' s' = Ok ()
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Hybrid                                                              *)
(* ------------------------------------------------------------------ *)

let test_hybrid_bandwidth_subject_to_time () =
  let inst = Figure1.instance () in
  (match Ocd_exact.Hybrid.bandwidth_subject_to_time ~slack:1.0 inst with
  | Ocd_exact.Hybrid.Solved { makespan; bandwidth; schedule } ->
    Alcotest.(check bool) "within optimal time" true (makespan <= 2);
    Alcotest.(check int) "bw at time-opt" 5 bandwidth;
    Alcotest.(check bool) "valid" true
      (Validate.check_successful inst schedule = Ok ())
  | _ -> Alcotest.fail "expected solved");
  match Ocd_exact.Hybrid.bandwidth_subject_to_time ~slack:1.5 inst with
  | Ocd_exact.Hybrid.Solved { bandwidth; makespan; _ } ->
    Alcotest.(check int) "bw with 1.5x slack" 4 bandwidth;
    Alcotest.(check bool) "time within slack" true (makespan <= 3)
  | _ -> Alcotest.fail "expected solved"

let test_hybrid_time_subject_to_bandwidth () =
  let inst = Figure1.instance () in
  (match Ocd_exact.Hybrid.time_subject_to_bandwidth ~slack:1.0 inst with
  | Ocd_exact.Hybrid.Solved { makespan; bandwidth; _ } ->
    Alcotest.(check int) "time at bw-opt" 3 makespan;
    Alcotest.(check int) "bw" 4 bandwidth
  | _ -> Alcotest.fail "expected solved");
  match Ocd_exact.Hybrid.time_subject_to_bandwidth ~slack:1.25 inst with
  | Ocd_exact.Hybrid.Solved { makespan; bandwidth; _ } ->
    Alcotest.(check int) "time with bw slack 5" 2 makespan;
    Alcotest.(check bool) "bw within budget" true (bandwidth <= 5)
  | _ -> Alcotest.fail "expected solved"

let test_hybrid_rejects_bad_slack () =
  Alcotest.check_raises "slack < 1"
    (Invalid_argument "Hybrid: slack must be >= 1.0") (fun () ->
      ignore
        (Ocd_exact.Hybrid.bandwidth_subject_to_time ~slack:0.5
           (Figure1.instance ())))

let test_hybrid_unsatisfiable () =
  let graph =
    Digraph.of_arcs ~vertex_count:2 [ { Digraph.src = 0; dst = 1; capacity = 1 } ]
  in
  let inst =
    Instance.make ~graph ~token_count:1 ~have:[ (1, [ 0 ]) ] ~want:[ (0, [ 0 ]) ]
  in
  Alcotest.(check bool) "unsat" true
    (Ocd_exact.Hybrid.bandwidth_subject_to_time ~slack:2.0 inst
    = Ocd_exact.Hybrid.Unsatisfiable)

let () =
  Alcotest.run "ocd_extensions"
    [
      ( "maxflow",
        [
          Alcotest.test_case "single path" `Quick test_maxflow_single_path;
          Alcotest.test_case "parallel paths" `Quick test_maxflow_parallel_paths;
          Alcotest.test_case "augmenting path" `Quick
            test_maxflow_needs_augmenting_path;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "flow decomposition" `Quick
            test_maxflow_flow_decomposition;
          Alcotest.test_case "invalid args" `Quick test_maxflow_invalid;
          qtest prop_maxflow_bounded_by_degree_cut;
        ] );
      ( "one-step-exact",
        [
          Alcotest.test_case "matching gap" `Quick test_one_step_exact_gap;
          Alcotest.test_case "feasible assignment" `Quick
            test_one_step_exact_feasible;
          Alcotest.test_case "satisfied" `Quick test_one_step_exact_satisfied;
          qtest prop_one_step_exact_implies_feasible;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "counts & ratios" `Quick test_fairness_counts;
          Alcotest.test_case "jain perfect" `Quick test_fairness_jain_perfect;
          Alcotest.test_case "jain skewed" `Quick test_fairness_jain_skewed;
          qtest prop_fairness_jain_in_range;
        ] );
      ( "codec",
        [
          Alcotest.test_case "instance roundtrip" `Quick
            test_codec_instance_roundtrip;
          Alcotest.test_case "schedule roundtrip" `Quick
            test_codec_schedule_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          qtest prop_codec_never_raises;
          qtest prop_codec_structured_garbage;
          qtest prop_codec_roundtrip_random;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "bandwidth s.t. time" `Quick
            test_hybrid_bandwidth_subject_to_time;
          Alcotest.test_case "time s.t. bandwidth" `Quick
            test_hybrid_time_subject_to_bandwidth;
          Alcotest.test_case "rejects bad slack" `Quick test_hybrid_rejects_bad_slack;
          Alcotest.test_case "unsatisfiable" `Quick test_hybrid_unsatisfiable;
        ] );
    ]
