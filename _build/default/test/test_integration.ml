(* Cross-library integration properties: heuristics vs exact optima,
   bounds sandwiches, metric/fairness accounting identities. *)

open Ocd_prelude
open Ocd_core

let qtest = QCheck_alcotest.to_alcotest

let tiny_instance_gen =
  QCheck.Gen.(
    let* seed = int_range 0 4_000 in
    let rng = Prng.create ~seed in
    let n = 3 + Prng.int rng 2 in
    let g =
      Ocd_topology.Random_graph.erdos_renyi rng ~n ~p:0.5
        ~weights:(Ocd_topology.Weights.Uniform (1, 2)) ()
    in
    let tokens = 1 + Prng.int rng 2 in
    return ((Scenario.single_file rng ~graph:g ~tokens ()).Scenario.instance, seed))

let medium_instance_gen =
  QCheck.Gen.(
    let* seed = int_range 0 4_000 in
    let rng = Prng.create ~seed in
    let n = 10 + Prng.int rng 20 in
    let g = Ocd_topology.Random_graph.erdos_renyi rng ~n ~p:0.35 () in
    let tokens = 2 + Prng.int rng 8 in
    return ((Scenario.single_file rng ~graph:g ~tokens ()).Scenario.instance, seed))

(* Every heuristic's results dominate the exact optima. *)
let prop_heuristics_dominate_exact =
  QCheck.Test.make ~name:"heuristic makespan/bandwidth >= exact optima"
    ~count:15 (QCheck.make tiny_instance_gen) (fun (inst, seed) ->
      match
        ( Ocd_exact.Search.focd ~max_states:50_000 inst,
          Ocd_exact.Search.eocd ~max_states:50_000 inst )
      with
      | ( Ocd_exact.Search.Solved { objective = opt_time; _ },
          Ocd_exact.Search.Solved { objective = opt_bw; _ } ) ->
        List.for_all
          (fun strategy ->
            let run =
              Ocd_engine.Engine.completed_exn
                (Ocd_engine.Engine.run ~strategy ~seed:(seed + 1) inst)
            in
            let m = run.Ocd_engine.Engine.metrics in
            m.Metrics.makespan >= opt_time
            && m.Metrics.bandwidth >= opt_bw
            && m.Metrics.pruned_bandwidth >= opt_bw)
          Ocd_heuristics.Registry.all
      | _ -> QCheck.assume_fail ())

(* The bound sandwich: deficit <= relay-aware <= pruned heuristic
   bandwidth, and makespan lower bound <= best heuristic makespan. *)
let prop_bound_sandwich =
  QCheck.Test.make ~name:"deficit <= relay-aware lb <= pruned bandwidth"
    ~count:25 (QCheck.make medium_instance_gen) (fun (inst, seed) ->
      let run =
        Ocd_engine.Engine.completed_exn
          (Ocd_engine.Engine.run
             ~strategy:Ocd_heuristics.Local_rarest.strategy ~seed:(seed + 2)
             inst)
      in
      let m = run.Ocd_engine.Engine.metrics in
      let deficit = Bounds.bandwidth_lower_bound inst in
      let relay = Bounds.relay_aware_bandwidth_lower_bound inst in
      deficit <= relay
      && relay <= m.Metrics.pruned_bandwidth
      && Bounds.makespan_lower_bound inst <= m.Metrics.makespan)

(* Serial-Steiner sits between the exact EOCD optimum and any
   flooding heuristic's raw bandwidth on single-file workloads. *)
let prop_serial_steiner_sandwich =
  QCheck.Test.make ~name:"EOCD <= serial-steiner <= flooding bandwidth"
    ~count:10 (QCheck.make tiny_instance_gen) (fun (inst, seed) ->
      match Ocd_exact.Search.eocd ~max_states:50_000 inst with
      | Ocd_exact.Search.Solved { objective = opt_bw; _ } ->
        let steiner = Ocd_baselines.Serial_steiner.bandwidth_upper_bound inst in
        let flood =
          (Ocd_engine.Engine.completed_exn
             (Ocd_engine.Engine.run
                ~strategy:Ocd_heuristics.Round_robin.strategy ~seed:(seed + 3)
                inst))
            .Ocd_engine.Engine.metrics.Metrics.bandwidth
        in
        opt_bw <= steiner && steiner <= max steiner flood
        (* flooding can in principle beat Steiner only below its own
           pruned floor; raw round-robin never does on these sizes *)
        && steiner <= flood
      | _ -> QCheck.assume_fail ())

(* Flood-then-optimal is diameter-additive w.r.t. its planner. *)
let prop_flood_optimal_additive =
  QCheck.Test.make ~name:"flood-optimal makespan <= diameter + planner length"
    ~count:10 (QCheck.make tiny_instance_gen) (fun (inst, seed) ->
      match Ocd_exact.Search.focd ~max_states:50_000 inst with
      | Ocd_exact.Search.Solved { objective = opt; schedule } ->
        let planner _ = schedule in
        let strategy =
          Ocd_engine.Flood_optimal.strategy ~planner ~name:"flood-test"
        in
        let run =
          Ocd_engine.Engine.completed_exn
            (Ocd_engine.Engine.run ~strategy ~seed:(seed + 4) inst)
        in
        run.Ocd_engine.Engine.metrics.Metrics.makespan
        <= Ocd_graph.Paths.diameter inst.Instance.graph + opt
      | _ -> QCheck.assume_fail ())

(* Accounting identities: fairness totals equal bandwidth; completion
   times are exactly the want-satisfaction frontier. *)
let prop_accounting_identities =
  QCheck.Test.make ~name:"fairness totals and completion times consistent"
    ~count:25 (QCheck.make medium_instance_gen) (fun (inst, seed) ->
      let run =
        Ocd_engine.Engine.completed_exn
          (Ocd_engine.Engine.run ~strategy:Ocd_heuristics.Random_push.strategy
             ~seed:(seed + 5) inst)
      in
      let schedule = run.Ocd_engine.Engine.schedule in
      let m = run.Ocd_engine.Engine.metrics in
      let f = Fairness.of_schedule inst schedule in
      let sum = Array.fold_left ( + ) 0 in
      sum f.Fairness.uploads = m.Metrics.bandwidth
      && sum f.Fairness.downloads = m.Metrics.bandwidth
      && Array.for_all (fun c -> c >= 0) m.Metrics.completion_times
      &&
      let final = Validate.final_possessions inst schedule in
      Array.for_all2
        (fun want have -> Bitset.subset want have)
        inst.Instance.want final)

(* The codec survives a full generate -> solve -> dump -> load ->
   revalidate pipeline. *)
let prop_pipeline_roundtrip =
  QCheck.Test.make ~name:"generate/solve/dump/load/revalidate pipeline"
    ~count:15 (QCheck.make medium_instance_gen) (fun (inst, seed) ->
      let run =
        Ocd_engine.Engine.completed_exn
          (Ocd_engine.Engine.run ~strategy:Ocd_heuristics.Global_greedy.strategy
             ~seed:(seed + 6) inst)
      in
      match
        ( Codec.instance_of_string (Codec.instance_to_string inst),
          Codec.schedule_of_string
            (Codec.schedule_to_string run.Ocd_engine.Engine.schedule) )
      with
      | Ok inst', Ok schedule' ->
        Validate.check_successful inst' schedule' = Ok ()
        && (Metrics.of_schedule inst' schedule').Metrics.bandwidth
           = run.Ocd_engine.Engine.metrics.Metrics.bandwidth
      | _ -> false)

(* Theorem 2 in codec form: a pruned successful schedule serialises in
   O(nm log(nm)) characters — each of its <= m(n-1) moves takes
   O(log n + log m) digits.  We check the concrete bound with the
   codec's constants. *)
let prop_theorem2_description_size =
  QCheck.Test.make ~name:"pruned schedules serialise within the Theorem 2 bound"
    ~count:20 (QCheck.make medium_instance_gen) (fun (inst, seed) ->
      let run =
        Ocd_engine.Engine.completed_exn
          (Ocd_engine.Engine.run ~strategy:Ocd_heuristics.Local_rarest.strategy
             ~seed:(seed + 7) inst)
      in
      let pruned = Prune.prune inst run.Ocd_engine.Engine.schedule in
      let n = Instance.vertex_count inst and m = inst.Instance.token_count in
      let moves = Schedule.move_count pruned in
      let digits x = String.length (string_of_int (max 1 x)) in
      (* per move: "src>dst:token " <= 2 digits(n) + digits(m) + 3;
         per step: "step\n" = 5; header "schedule\n" = 9 *)
      let bound =
        (moves * ((2 * digits n) + digits m + 3))
        + (Schedule.length pruned * 5)
        + 16
      in
      moves <= m * (n - 1)
      && String.length (Codec.schedule_to_string pruned) <= bound)

(* Hybrid interpolates between the two exact extremes. *)
let prop_hybrid_interpolates =
  QCheck.Test.make
    ~name:"hybrid objective interpolates between FOCD and EOCD extremes"
    ~count:8 (QCheck.make tiny_instance_gen) (fun (inst, _) ->
      match
        ( Ocd_exact.Search.focd ~max_states:50_000 inst,
          Ocd_exact.Search.eocd ~max_states:50_000 inst )
      with
      | ( Ocd_exact.Search.Solved { objective = opt_time; _ },
          Ocd_exact.Search.Solved { objective = opt_bw; _ } ) -> (
        match Ocd_exact.Hybrid.bandwidth_subject_to_time ~slack:1.0 inst with
        | Ocd_exact.Hybrid.Solved { makespan; bandwidth; _ } ->
          makespan <= opt_time && bandwidth >= opt_bw
        | Ocd_exact.Hybrid.Unsatisfiable -> false
        | Ocd_exact.Hybrid.Budget_exceeded -> QCheck.assume_fail ())
      | _ -> QCheck.assume_fail ())

let () =
  Alcotest.run "ocd_integration"
    [
      ( "cross-library",
        [
          qtest prop_heuristics_dominate_exact;
          qtest prop_bound_sandwich;
          qtest prop_serial_steiner_sandwich;
          qtest prop_flood_optimal_additive;
          qtest prop_accounting_identities;
          qtest prop_pipeline_roundtrip;
          qtest prop_theorem2_description_size;
          qtest prop_hybrid_interpolates;
        ] );
    ]
