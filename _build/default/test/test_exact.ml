(* Tests for ocd_exact: Search, Simplex, Ilp, Ip_formulation,
   Reduction, Adversary. *)

open Ocd_prelude
open Ocd_core
open Ocd_graph
open Ocd_exact

let qtest = QCheck_alcotest.to_alcotest

let line () =
  let graph =
    Digraph.of_arcs ~vertex_count:3
      [
        { Digraph.src = 0; dst = 1; capacity = 2 };
        { Digraph.src = 1; dst = 2; capacity = 2 };
      ]
  in
  Instance.make ~graph ~token_count:2 ~have:[ (0, [ 0; 1 ]) ]
    ~want:[ (2, [ 0; 1 ]) ]

let solved = function
  | Search.Solved s -> s
  | Search.Unsatisfiable -> Alcotest.fail "unexpected Unsatisfiable"
  | Search.Budget_exceeded -> Alcotest.fail "unexpected Budget_exceeded"

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let test_focd_line () =
  let s = solved (Search.focd (line ())) in
  Alcotest.(check int) "makespan 2" 2 s.Search.objective;
  Alcotest.(check bool) "witness valid" true
    (Validate.check_successful (line ()) s.Search.schedule = Ok ())

let test_focd_trivial () =
  let graph = Digraph.of_edges ~vertex_count:2 [ (0, 1, 1) ] in
  let inst =
    Instance.make ~graph ~token_count:1 ~have:[ (0, [ 0 ]) ] ~want:[ (0, [ 0 ]) ]
  in
  Alcotest.(check int) "0 steps" 0 (solved (Search.focd inst)).Search.objective

let test_focd_unsatisfiable () =
  let graph =
    Digraph.of_arcs ~vertex_count:2 [ { Digraph.src = 0; dst = 1; capacity = 1 } ]
  in
  let inst =
    Instance.make ~graph ~token_count:1 ~have:[ (1, [ 0 ]) ] ~want:[ (0, [ 0 ]) ]
  in
  Alcotest.(check bool) "unsat" true (Search.focd inst = Search.Unsatisfiable)

let test_focd_capacity_bound () =
  (* 3 tokens over a capacity-1 arc: 3 steps. *)
  let graph =
    Digraph.of_arcs ~vertex_count:2 [ { Digraph.src = 0; dst = 1; capacity = 1 } ]
  in
  let inst =
    Instance.make ~graph ~token_count:3 ~have:[ (0, [ 0; 1; 2 ]) ]
      ~want:[ (1, [ 0; 1; 2 ]) ]
  in
  Alcotest.(check int) "3 steps" 3 (solved (Search.focd inst)).Search.objective

let test_focd_budget () =
  let inst = line () in
  Alcotest.(check bool) "tiny budget trips" true
    (Search.focd ~max_states:0 inst = Search.Budget_exceeded)

let test_eocd_line () =
  let s = solved (Search.eocd (line ())) in
  Alcotest.(check int) "4 moves" 4 s.Search.objective;
  Alcotest.(check bool) "witness valid" true
    (Validate.check_successful (line ()) s.Search.schedule = Ok ())

let test_eocd_horizon_tension () =
  (* Figure 1: minimum bandwidth is 4 (3 steps); restricted to 2 steps
     it rises to 5. *)
  let inst = Figure1.instance () in
  Alcotest.(check int) "unbounded" 4 (solved (Search.eocd inst)).Search.objective;
  Alcotest.(check int) "horizon 3" 4
    (solved (Search.eocd ~horizon:3 inst)).Search.objective;
  Alcotest.(check int) "horizon 2" 5
    (solved (Search.eocd ~horizon:2 inst)).Search.objective;
  Alcotest.(check bool) "horizon 1 unsat" true
    (Search.eocd ~horizon:1 inst = Search.Unsatisfiable)

let test_focd_figure1 () =
  Alcotest.(check int) "figure1 FOCD = 2" 2
    (solved (Search.focd (Figure1.instance ()))).Search.objective

let test_eocd_bandwidth_is_deficit_on_direct_graphs () =
  (* Star: source adjacent to every wanter → EOCD = deficit. *)
  let graph =
    Digraph.of_edges ~vertex_count:4 [ (0, 1, 2); (0, 2, 2); (0, 3, 2) ]
  in
  let inst =
    Instance.make ~graph ~token_count:2 ~have:[ (0, [ 0; 1 ]) ]
      ~want:[ (1, [ 0; 1 ]); (2, [ 0 ]); (3, [ 1 ]) ]
  in
  Alcotest.(check int) "deficit 4" 4 (solved (Search.eocd inst)).Search.objective

(* Cross-validation: on random tiny instances FOCD(makespan) must be
   consistent with EOCD horizons: EOCD at horizon = FOCD makespan is
   solvable, below it is not. *)
let tiny_instance_gen =
  QCheck.Gen.(
    let* seed = int_range 0 3000 in
    let rng = Prng.create ~seed in
    let n = 3 + Prng.int rng 2 in
    let g = Ocd_topology.Random_graph.erdos_renyi rng ~n ~p:0.5
        ~weights:(Ocd_topology.Weights.Uniform (1, 2)) () in
    let tokens = 1 + Prng.int rng 2 in
    let sc = Scenario.single_file rng ~graph:g ~tokens ~source:0 () in
    return sc.Scenario.instance)

let prop_focd_eocd_consistent =
  QCheck.Test.make ~name:"FOCD horizon is the EOCD feasibility threshold"
    ~count:25 (QCheck.make tiny_instance_gen) (fun inst ->
      match Search.focd ~max_states:50_000 inst with
      | Search.Solved { objective = tau; _ } ->
        let feasible_at h =
          match Search.eocd ~max_states:50_000 ~horizon:h inst with
          | Search.Solved _ -> true
          | Search.Unsatisfiable -> false
          | Search.Budget_exceeded -> QCheck.assume_fail ()
        in
        feasible_at tau && (tau = 0 || not (feasible_at (tau - 1)))
      | _ -> QCheck.assume_fail ())

let prop_focd_geq_lower_bound =
  QCheck.Test.make ~name:"FOCD optimum >= §5.1 lower bound" ~count:25
    (QCheck.make tiny_instance_gen) (fun inst ->
      match Search.focd ~max_states:50_000 inst with
      | Search.Solved { objective; _ } ->
        objective >= Bounds.makespan_lower_bound inst
      | _ -> QCheck.assume_fail ())

let prop_eocd_geq_deficit =
  QCheck.Test.make ~name:"EOCD optimum >= total deficit" ~count:25
    (QCheck.make tiny_instance_gen) (fun inst ->
      match Search.eocd ~max_states:50_000 inst with
      | Search.Solved { objective; _ } ->
        objective >= Instance.total_deficit inst
      | _ -> QCheck.assume_fail ())

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)
(* ------------------------------------------------------------------ *)

let test_simplex_basic_min () =
  (* min x + y st x + y >= 2, x >= 0, y >= 0 → 2 *)
  let p =
    {
      Simplex.var_count = 2;
      objective = [| 1.0; 1.0 |];
      constraints =
        [ { Simplex.coeffs = [| 1.0; 1.0 |]; relation = Simplex.Ge; rhs = 2.0 } ];
    }
  in
  match Simplex.minimize p with
  | Simplex.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "objective" 2.0 objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_bounded_box () =
  (* min -x - 2y st x <= 3, y <= 4 → -11 at (3,4) *)
  let p =
    {
      Simplex.var_count = 2;
      objective = [| -1.0; -2.0 |];
      constraints =
        [
          { Simplex.coeffs = [| 1.0; 0.0 |]; relation = Simplex.Le; rhs = 3.0 };
          { Simplex.coeffs = [| 0.0; 1.0 |]; relation = Simplex.Le; rhs = 4.0 };
        ];
    }
  in
  match Simplex.minimize p with
  | Simplex.Optimal { objective; solution } ->
    Alcotest.(check (float 1e-6)) "objective" (-11.0) objective;
    Alcotest.(check (float 1e-6)) "x" 3.0 solution.(0);
    Alcotest.(check (float 1e-6)) "y" 4.0 solution.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality () =
  (* min x st x = 5 *)
  let p =
    {
      Simplex.var_count = 1;
      objective = [| 1.0 |];
      constraints =
        [ { Simplex.coeffs = [| 1.0 |]; relation = Simplex.Eq; rhs = 5.0 } ];
    }
  in
  match Simplex.minimize p with
  | Simplex.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "objective" 5.0 objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  (* x <= 1 and x >= 2 *)
  let p =
    {
      Simplex.var_count = 1;
      objective = [| 1.0 |];
      constraints =
        [
          { Simplex.coeffs = [| 1.0 |]; relation = Simplex.Le; rhs = 1.0 };
          { Simplex.coeffs = [| 1.0 |]; relation = Simplex.Ge; rhs = 2.0 };
        ];
    }
  in
  Alcotest.(check bool) "infeasible" true (Simplex.minimize p = Simplex.Infeasible);
  Alcotest.(check bool) "feasible predicate" false (Simplex.feasible p)

let test_simplex_unbounded () =
  (* min -x st x >= 0 (no upper bound) *)
  let p = { Simplex.var_count = 1; objective = [| -1.0 |]; constraints = [] } in
  Alcotest.(check bool) "unbounded" true (Simplex.minimize p = Simplex.Unbounded)

let test_simplex_negative_rhs_normalisation () =
  (* -x <= -3  ⟺  x >= 3 *)
  let p =
    {
      Simplex.var_count = 1;
      objective = [| 1.0 |];
      constraints =
        [ { Simplex.coeffs = [| -1.0 |]; relation = Simplex.Le; rhs = -3.0 } ];
    }
  in
  match Simplex.minimize p with
  | Simplex.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "objective 3" 3.0 objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_degenerate_redundant () =
  (* Redundant equalities exercise artificial purging. *)
  let p =
    {
      Simplex.var_count = 2;
      objective = [| 1.0; 1.0 |];
      constraints =
        [
          { Simplex.coeffs = [| 1.0; 1.0 |]; relation = Simplex.Eq; rhs = 2.0 };
          { Simplex.coeffs = [| 2.0; 2.0 |]; relation = Simplex.Eq; rhs = 4.0 };
        ];
    }
  in
  match Simplex.minimize p with
  | Simplex.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "objective 2" 2.0 objective
  | _ -> Alcotest.fail "expected optimal"

(* ------------------------------------------------------------------ *)
(* Ilp                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ilp_knapsack_like () =
  (* min x0 + x1 + x2 st x0 + x1 >= 1, x1 + x2 >= 1, x0 + x2 >= 1:
     vertex cover of a triangle → 2. *)
  let row a b c = [| a; b; c |] in
  match
    Ilp.minimize ~var_count:3 ~objective:[| 1; 1; 1 |]
      ~constraints:
        [
          { Simplex.coeffs = row 1.0 1.0 0.0; relation = Simplex.Ge; rhs = 1.0 };
          { Simplex.coeffs = row 0.0 1.0 1.0; relation = Simplex.Ge; rhs = 1.0 };
          { Simplex.coeffs = row 1.0 0.0 1.0; relation = Simplex.Ge; rhs = 1.0 };
        ]
      ()
  with
  | Ilp.Optimal { objective; solution } ->
    Alcotest.(check int) "triangle cover" 2 objective;
    Alcotest.(check int) "two chosen" 2
      (Array.fold_left (fun a b -> if b then a + 1 else a) 0 solution)
  | _ -> Alcotest.fail "expected optimal"

let test_ilp_forced_integrality () =
  (* LP relaxation of the triangle cover is 1.5; ILP must reach 2. *)
  let row a b c = [| a; b; c |] in
  let constraints =
    [
      { Simplex.coeffs = row 1.0 1.0 0.0; relation = Simplex.Ge; rhs = 1.0 };
      { Simplex.coeffs = row 0.0 1.0 1.0; relation = Simplex.Ge; rhs = 1.0 };
      { Simplex.coeffs = row 1.0 0.0 1.0; relation = Simplex.Ge; rhs = 1.0 };
    ]
  in
  let lp =
    Simplex.minimize
      {
        Simplex.var_count = 3;
        objective = [| 1.0; 1.0; 1.0 |];
        constraints =
          constraints
          @ List.init 3 (fun j ->
                let coeffs = Array.make 3 0.0 in
                coeffs.(j) <- 1.0;
                { Simplex.coeffs; relation = Simplex.Le; rhs = 1.0 });
      }
  in
  (match lp with
  | Simplex.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "fractional LP" 1.5 objective
  | _ -> Alcotest.fail "LP should be optimal");
  match Ilp.minimize ~var_count:3 ~objective:[| 1; 1; 1 |] ~constraints () with
  | Ilp.Optimal { objective; _ } -> Alcotest.(check int) "ILP rounds up" 2 objective
  | _ -> Alcotest.fail "expected optimal"

let test_ilp_infeasible () =
  match
    Ilp.minimize ~var_count:1 ~objective:[| 1 |]
      ~constraints:
        [ { Simplex.coeffs = [| 1.0 |]; relation = Simplex.Ge; rhs = 2.0 } ]
      ()
  with
  | Ilp.Infeasible -> ()
  | _ -> Alcotest.fail "x <= 1 cannot reach 2"

(* Cross-check the whole simplex+B&B stack against exhaustive
   enumeration of all 0/1 assignments on random small programs. *)
let random_ilp_gen =
  QCheck.Gen.(
    let* seed = int_range 0 5_000 in
    let rng = Prng.create ~seed in
    let vars = 2 + Prng.int rng 4 in
    let constraints = 1 + Prng.int rng 4 in
    let objective = Array.init vars (fun _ -> Prng.int rng 5) in
    let rows =
      List.init constraints (fun _ ->
          let coeffs =
            Array.init vars (fun _ -> float_of_int (Prng.int_in rng (-2) 3))
          in
          let relation =
            match Prng.int rng 3 with
            | 0 -> Simplex.Le
            | 1 -> Simplex.Ge
            | _ -> Simplex.Eq
          in
          let rhs = float_of_int (Prng.int_in rng (-2) 4) in
          { Simplex.coeffs; relation; rhs })
    in
    return (vars, objective, rows))

let brute_force_ilp vars objective constraints =
  let best = ref None in
  for mask = 0 to (1 lsl vars) - 1 do
    let x = Array.init vars (fun j -> if mask land (1 lsl j) <> 0 then 1.0 else 0.0) in
    let feasible =
      List.for_all
        (fun { Simplex.coeffs; relation; rhs } ->
          let lhs = ref 0.0 in
          Array.iteri (fun j c -> lhs := !lhs +. (c *. x.(j))) coeffs;
          match relation with
          | Simplex.Le -> !lhs <= rhs +. 1e-9
          | Simplex.Ge -> !lhs >= rhs -. 1e-9
          | Simplex.Eq -> Float.abs (!lhs -. rhs) < 1e-9)
        constraints
    in
    if feasible then begin
      let value = ref 0 in
      Array.iteri (fun j c -> if x.(j) > 0.5 then value := !value + c) objective;
      match !best with
      | Some b when b <= !value -> ()
      | _ -> best := Some !value
    end
  done;
  !best

let prop_ilp_matches_brute_force =
  QCheck.Test.make ~name:"ILP solver = brute force on random 0/1 programs"
    ~count:60 (QCheck.make random_ilp_gen) (fun (vars, objective, rows) ->
      let brute = brute_force_ilp vars objective rows in
      match
        (Ilp.minimize ~var_count:vars ~objective ~constraints:rows (), brute)
      with
      | Ilp.Optimal { objective = v; _ }, Some b -> v = b
      | Ilp.Infeasible, None -> true
      | Ilp.Budget_exceeded, _ -> QCheck.assume_fail ()
      | Ilp.Optimal _, None | Ilp.Infeasible, Some _ -> false)

let test_ilp_budget () =
  match
    Ilp.minimize ~max_nodes:0 ~var_count:1 ~objective:[| 1 |] ~constraints:[] ()
  with
  | Ilp.Budget_exceeded -> ()
  | _ -> Alcotest.fail "expected budget"

(* ------------------------------------------------------------------ *)
(* Ip_formulation                                                      *)
(* ------------------------------------------------------------------ *)

let test_ip_figure1 () =
  let inst = Figure1.instance () in
  (match Ip_formulation.eocd_at_horizon inst ~horizon:2 with
  | Ip_formulation.Solved { bandwidth; schedule } ->
    Alcotest.(check int) "EOCD@2 = 5" 5 bandwidth;
    Alcotest.(check bool) "schedule valid" true
      (Validate.check_successful inst schedule = Ok ())
  | _ -> Alcotest.fail "horizon 2 should be solvable");
  (match Ip_formulation.eocd_at_horizon inst ~horizon:3 with
  | Ip_formulation.Solved { bandwidth; _ } ->
    Alcotest.(check int) "EOCD@3 = 4" 4 bandwidth
  | _ -> Alcotest.fail "horizon 3 should be solvable");
  match Ip_formulation.eocd_at_horizon inst ~horizon:1 with
  | Ip_formulation.Infeasible_at_horizon -> ()
  | _ -> Alcotest.fail "horizon 1 should be infeasible"

let test_ip_focd_figure1 () =
  match Ip_formulation.focd (Figure1.instance ()) with
  | Some (2, schedule) ->
    Alcotest.(check bool) "witness valid" true
      (Validate.check_successful (Figure1.instance ()) schedule = Ok ())
  | Some (tau, _) -> Alcotest.failf "expected tau 2, got %d" tau
  | None -> Alcotest.fail "expected solution"

let test_ip_variable_count () =
  let inst = Figure1.instance () in
  (* τ=2: 2 steps × (4 real + 4 self) arcs × 3 tokens + 4×3 final = 60 *)
  Alcotest.(check int) "variables" 60
    (Ip_formulation.variable_count inst ~horizon:2)

let prop_ip_matches_search =
  QCheck.Test.make ~name:"IP and combinatorial search agree on EOCD@FOCD"
    ~count:8 (QCheck.make tiny_instance_gen) (fun inst ->
      match Search.focd ~max_states:50_000 inst with
      | Search.Solved { objective = tau; _ } when tau <= 3 -> (
        match
          ( Search.eocd ~max_states:100_000 ~horizon:tau inst,
            Ip_formulation.eocd_at_horizon ~max_nodes:5000 inst ~horizon:tau )
        with
        | Search.Solved s, Ip_formulation.Solved { bandwidth; _ } ->
          s.Search.objective = bandwidth
        | Search.Budget_exceeded, _ | _, Ip_formulation.Budget_exceeded ->
          QCheck.assume_fail ()
        | _ -> false)
      | _ -> QCheck.assume_fail ())

(* ------------------------------------------------------------------ *)
(* Reduction                                                           *)
(* ------------------------------------------------------------------ *)

let ds_graph_gen =
  QCheck.Gen.(
    let* seed = int_range 0 5000 in
    let rng = Prng.create ~seed in
    let n = 3 + Prng.int rng 3 in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Prng.bernoulli rng 0.4 then edges := (u, v, 1) :: !edges
      done
    done;
    (* ensure at least one edge so of_edges builds arcs; isolated
       vertices are fine for domination *)
    return (Digraph.of_edges ~vertex_count:n !edges))

let test_reduction_layout () =
  let g = Digraph.of_edges ~vertex_count:3 [ (0, 1, 1) ] in
  let inst = Reduction.instance g ~k:1 in
  Alcotest.(check int) "2n+2 vertices" 8 (Instance.vertex_count inst);
  Alcotest.(check int) "n-k+1 tokens" 3 inst.Instance.token_count;
  Alcotest.(check (list int)) "s holds all" [ 0; 1; 2 ]
    (Bitset.elements inst.Instance.have.(Reduction.vertex_s));
  Alcotest.(check (list int)) "t wants B tokens" [ 1; 2 ]
    (Bitset.elements inst.Instance.want.(Reduction.vertex_t));
  Alcotest.(check (list int)) "v'_0 wants token 0" [ 0 ]
    (Bitset.elements inst.Instance.want.(Reduction.receiver ~n:3 0))

let test_reduction_star_k1 () =
  (* Star graph has a dominating set of size 1 → 2-step solvable. *)
  let g =
    Digraph.of_edges ~vertex_count:4 [ (0, 1, 1); (0, 2, 1); (0, 3, 1) ]
  in
  Alcotest.(check bool) "k=1 solvable" true (Reduction.two_step_solvable g ~k:1);
  Alcotest.(check bool) "k=0 not" false (Reduction.two_step_solvable g ~k:0)

let test_reduction_constructive_schedule () =
  let g =
    Digraph.of_edges ~vertex_count:4 [ (0, 1, 1); (0, 2, 1); (0, 3, 1) ]
  in
  let inst = Reduction.instance g ~k:1 in
  let sch = Reduction.schedule_of_dominating_set g ~k:1 ~dominating:[ 0 ] in
  Alcotest.(check bool) "2 steps" true (Schedule.length sch = 2);
  Alcotest.(check bool) "valid & successful" true
    (Validate.check_successful inst sch = Ok ())

let test_reduction_rejects_non_dominating () =
  let g = Digraph.of_edges ~vertex_count:4 [ (0, 1, 1); (2, 3, 1) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Reduction.schedule_of_dominating_set g ~k:1 ~dominating:[ 0 ]);
       false
     with Invalid_argument _ -> true)

let prop_reduction_equivalence =
  QCheck.Test.make
    ~name:"DS of size <= k iff reduced FOCD solvable in 2 steps" ~count:40
    (QCheck.make ds_graph_gen) (fun g ->
      let n = Digraph.vertex_count g in
      List.for_all
        (fun k ->
          Ocd_graph.Dominating.exists_of_size g k
          = Reduction.two_step_solvable g ~k)
        (List.init (n + 1) Fun.id))

let prop_reduction_constructive =
  QCheck.Test.make
    ~name:"constructive schedule from a minimum dominating set validates"
    ~count:40 (QCheck.make ds_graph_gen) (fun g ->
      let dom = Ocd_graph.Dominating.minimum g in
      let k = List.length dom in
      let inst = Reduction.instance g ~k in
      let sch = Reduction.schedule_of_dominating_set g ~k ~dominating:dom in
      Schedule.length sch = 2 && Validate.check_successful inst sch = Ok ())

let prop_reduction_matches_generic_search =
  QCheck.Test.make
    ~name:"generic FOCD search agrees with the 2-step decision (n <= 4)"
    ~count:10
    QCheck.(int_range 0 300)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 3 + Prng.int rng 2 in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Prng.bernoulli rng 0.5 then edges := (u, v, 1) :: !edges
        done
      done;
      let g = Digraph.of_edges ~vertex_count:n !edges in
      let k = Prng.int rng (n + 1) in
      match Search.focd ~max_states:60_000 (Reduction.instance g ~k) with
      | Search.Solved { objective = tau; _ } ->
        (tau <= 2) = Reduction.two_step_solvable g ~k
      | Search.Unsatisfiable -> not (Reduction.two_step_solvable g ~k)
      | Search.Budget_exceeded -> QCheck.assume_fail ())

(* ------------------------------------------------------------------ *)
(* Adversary                                                           *)
(* ------------------------------------------------------------------ *)

let test_adversary_instance () =
  let inst = Adversary.instance ~distance:4 ~decoys:6 ~wanted:2 in
  Alcotest.(check int) "vertices" 5 (Instance.vertex_count inst);
  Alcotest.(check int) "tokens" 7 inst.Instance.token_count;
  Alcotest.(check bool) "satisfiable" true (Instance.satisfiable inst)

let test_adversary_optimal_schedule () =
  let inst = Adversary.instance ~distance:4 ~decoys:6 ~wanted:2 in
  let sch = Adversary.optimal_schedule ~distance:4 ~decoys:6 ~wanted:2 in
  Alcotest.(check bool) "valid" true (Validate.check_successful inst sch = Ok ());
  Alcotest.(check int) "makespan = distance" 4 (Schedule.length sch);
  Alcotest.(check int) "bandwidth = distance" 4 (Schedule.move_count sch)

let test_adversary_optimum_is_exact () =
  let inst = Adversary.instance ~distance:3 ~decoys:2 ~wanted:0 in
  Alcotest.(check int) "FOCD = distance" 3
    (solved (Search.focd inst)).Search.objective

let test_adversary_hurts_blind_heuristics () =
  (* With capacity-1 arcs and many decoys, want-blind flooding must be
     strictly slower than the prescient optimum on some wanted token:
     the adversary picks the worst; we check the max over wanted. *)
  let distance = 4 and decoys = 6 in
  let worst strategy =
    List.fold_left
      (fun acc wanted ->
        let inst = Adversary.instance ~distance ~decoys ~wanted in
        let run = Ocd_engine.Engine.run ~strategy ~seed:5 inst in
        max acc run.Ocd_engine.Engine.metrics.Metrics.makespan)
      0
      (List.init (decoys + 1) Fun.id)
  in
  Alcotest.(check bool) "round-robin suffers" true
    (worst Ocd_heuristics.Round_robin.strategy > distance);
  Alcotest.(check bool) "random suffers" true
    (worst Ocd_heuristics.Random_push.strategy > distance);
  (* The want-aware bandwidth heuristic matches the optimum. *)
  Alcotest.(check int) "bandwidth optimal" distance
    (worst Ocd_heuristics.Bandwidth_saver.strategy)

let () =
  Alcotest.run "ocd_exact"
    [
      ( "search-focd",
        [
          Alcotest.test_case "line" `Quick test_focd_line;
          Alcotest.test_case "trivial" `Quick test_focd_trivial;
          Alcotest.test_case "unsatisfiable" `Quick test_focd_unsatisfiable;
          Alcotest.test_case "capacity bound" `Quick test_focd_capacity_bound;
          Alcotest.test_case "budget" `Quick test_focd_budget;
          Alcotest.test_case "figure1" `Quick test_focd_figure1;
        ] );
      ( "search-eocd",
        [
          Alcotest.test_case "line" `Quick test_eocd_line;
          Alcotest.test_case "figure1 horizon tension" `Quick
            test_eocd_horizon_tension;
          Alcotest.test_case "star deficit" `Quick
            test_eocd_bandwidth_is_deficit_on_direct_graphs;
          qtest prop_focd_eocd_consistent;
          qtest prop_focd_geq_lower_bound;
          qtest prop_eocd_geq_deficit;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "basic min" `Quick test_simplex_basic_min;
          Alcotest.test_case "bounded box" `Quick test_simplex_bounded_box;
          Alcotest.test_case "equality" `Quick test_simplex_equality;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick
            test_simplex_negative_rhs_normalisation;
          Alcotest.test_case "redundant equalities" `Quick
            test_simplex_degenerate_redundant;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "triangle cover" `Quick test_ilp_knapsack_like;
          Alcotest.test_case "forces integrality" `Quick test_ilp_forced_integrality;
          Alcotest.test_case "infeasible" `Quick test_ilp_infeasible;
          Alcotest.test_case "budget" `Quick test_ilp_budget;
          qtest prop_ilp_matches_brute_force;
        ] );
      ( "ip-formulation",
        [
          Alcotest.test_case "figure1 horizons" `Quick test_ip_figure1;
          Alcotest.test_case "figure1 FOCD" `Quick test_ip_focd_figure1;
          Alcotest.test_case "variable count" `Quick test_ip_variable_count;
          qtest prop_ip_matches_search;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "layout" `Quick test_reduction_layout;
          Alcotest.test_case "star k=1" `Quick test_reduction_star_k1;
          Alcotest.test_case "constructive schedule" `Quick
            test_reduction_constructive_schedule;
          Alcotest.test_case "rejects non-dominating" `Quick
            test_reduction_rejects_non_dominating;
          qtest prop_reduction_equivalence;
          qtest prop_reduction_constructive;
          qtest prop_reduction_matches_generic_search;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "instance" `Quick test_adversary_instance;
          Alcotest.test_case "optimal schedule" `Quick test_adversary_optimal_schedule;
          Alcotest.test_case "optimum exact" `Quick test_adversary_optimum_is_exact;
          Alcotest.test_case "blind heuristics suffer" `Quick
            test_adversary_hurts_blind_heuristics;
        ] );
    ]
