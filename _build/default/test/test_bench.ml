(* Tests for ocd_bench: Report and Sweep. *)

open Ocd_prelude
open Ocd_core

let test_report_row_mismatch () =
  let t = Ocd_bench.Report.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Report.row: cell count mismatch") (fun () ->
      Ocd_bench.Report.row t [ "only-one" ])

let test_report_renders () =
  let t = Ocd_bench.Report.create ~title:"demo table" ~columns:[ "x"; "y" ] in
  Ocd_bench.Report.row t [ "1"; "alpha" ];
  Ocd_bench.Report.row t [ "2"; "beta" ];
  (* rendering goes to stdout; the test asserts it does not raise *)
  Ocd_bench.Report.render t;
  Ocd_bench.Report.section "section";
  Ocd_bench.Report.note "a note with %d" 42

let test_sweep_run_point () =
  let strategies =
    [ Ocd_heuristics.Local_rarest.strategy; Ocd_heuristics.Random_push.strategy ]
  in
  let point =
    Ocd_bench.Sweep.run_point ~trials:2 ~seed:77 ~strategies ~x_label:"p"
      (fun rng ->
        let g = Ocd_topology.Random_graph.erdos_renyi rng ~n:15 ~p:0.4 () in
        (Scenario.single_file rng ~graph:g ~tokens:5 ()).Scenario.instance)
  in
  Alcotest.(check string) "label" "p" point.Ocd_bench.Sweep.x_label;
  Alcotest.(check int) "aggregates per strategy" 2
    (List.length point.Ocd_bench.Sweep.aggregates);
  List.iter
    (fun a ->
      Alcotest.(check int) "trials recorded" 2
        a.Ocd_bench.Sweep.moves.Stats.count;
      Alcotest.(check bool) "bandwidth >= lb" true
        (a.Ocd_bench.Sweep.bandwidth.Stats.mean
        >= float_of_int point.Ocd_bench.Sweep.bandwidth_lb))
    point.Ocd_bench.Sweep.aggregates

let test_sweep_deterministic () =
  let build rng =
    let g = Ocd_topology.Random_graph.erdos_renyi rng ~n:12 ~p:0.4 () in
    (Scenario.single_file rng ~graph:g ~tokens:4 ()).Scenario.instance
  in
  let point () =
    Ocd_bench.Sweep.run_point ~trials:2 ~seed:99
      ~strategies:[ Ocd_heuristics.Random_push.strategy ] ~x_label:"d" build
  in
  let a = point () and b = point () in
  let mean p =
    (List.hd p.Ocd_bench.Sweep.aggregates).Ocd_bench.Sweep.bandwidth.Stats.mean
  in
  Alcotest.(check (float 1e-9)) "same seed, same result" (mean a) (mean b)

let test_sweep_raises_on_stall () =
  let idle = Ocd_engine.Strategy.stateless ~name:"idle" (fun _ -> []) in
  Alcotest.(check bool) "stall surfaces as failure" true
    (try
       ignore
         (Ocd_bench.Sweep.run_point ~trials:1 ~seed:5 ~strategies:[ idle ]
            ~x_label:"s" (fun rng ->
              let g = Ocd_topology.Random_graph.erdos_renyi rng ~n:8 ~p:0.5 () in
              (Scenario.single_file rng ~graph:g ~tokens:3 ()).Scenario.instance));
       false
     with Failure _ -> true)

let () =
  Alcotest.run "ocd_bench"
    [
      ( "report",
        [
          Alcotest.test_case "row mismatch" `Quick test_report_row_mismatch;
          Alcotest.test_case "renders" `Quick test_report_renders;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "run_point" `Quick test_sweep_run_point;
          Alcotest.test_case "deterministic" `Quick test_sweep_deterministic;
          Alcotest.test_case "stall raises" `Quick test_sweep_raises_on_stall;
        ] );
    ]
