(* Tests for ocd_coding. *)

open Ocd_prelude
open Ocd_core

let qtest = QCheck_alcotest.to_alcotest

let graph ~seed ~n =
  Ocd_topology.Random_graph.erdos_renyi (Prng.create ~seed) ~n ~p:0.35 ()

let test_single_file_shape () =
  let rng = Prng.create ~seed:1 in
  let t = Ocd_coding.Coding.single_file rng ~graph:(graph ~seed:1 ~n:10)
      ~required:4 ~coded:6 ~source:0 () in
  Alcotest.(check int) "token count = coded" 6
    t.Ocd_coding.Coding.instance.Instance.token_count;
  match t.Ocd_coding.Coding.groups with
  | [ g ] ->
    Alcotest.(check int) "required" 4 g.Ocd_coding.Coding.required;
    Alcotest.(check int) "receivers" 9
      (List.length g.Ocd_coding.Coding.receivers)
  | _ -> Alcotest.fail "expected one group"

let test_single_file_invalid () =
  let rng = Prng.create ~seed:1 in
  Alcotest.check_raises "coded < required"
    (Invalid_argument "Coding.single_file: need 0 < required <= coded")
    (fun () ->
      ignore
        (Ocd_coding.Coding.single_file rng ~graph:(graph ~seed:1 ~n:5)
           ~required:4 ~coded:3 ()))

let test_decoded_threshold () =
  let rng = Prng.create ~seed:2 in
  let t =
    Ocd_coding.Coding.single_file rng ~graph:(graph ~seed:2 ~n:4) ~required:2
      ~coded:4 ~source:0 ()
  in
  let inst = t.Ocd_coding.Coding.instance in
  let have = Array.map Bitset.copy inst.Instance.have in
  (* receiver 1 with one coded token: not decoded *)
  Bitset.add have.(1) 0;
  Alcotest.(check bool) "one token insufficient" false
    (Ocd_coding.Coding.decoded t have 1);
  Bitset.add have.(1) 3;
  Alcotest.(check bool) "any two suffice" true
    (Ocd_coding.Coding.decoded t have 1);
  (* the source decodes trivially (holds everything) *)
  Alcotest.(check bool) "source decoded" true (Ocd_coding.Coding.decoded t have 0)

let test_run_completes_early () =
  (* With coded = required the coded run must equal the want-based run;
     with redundancy it can only stop sooner or equal. *)
  let g = graph ~seed:3 ~n:20 in
  let rng = Prng.create ~seed:3 in
  let exact =
    Ocd_coding.Coding.single_file rng ~graph:g ~required:8 ~coded:8 ~source:0 ()
  in
  let run_exact =
    Ocd_coding.Coding.run ~strategy:Ocd_heuristics.Random_push.strategy ~seed:5
      exact
  in
  let engine_run =
    Ocd_engine.Engine.completed_exn
      (Ocd_engine.Engine.run ~strategy:Ocd_heuristics.Random_push.strategy
         ~seed:5 exact.Ocd_coding.Coding.instance)
  in
  Alcotest.(check bool) "completed" true
    (run_exact.Ocd_coding.Coding.outcome = Ocd_engine.Engine.Completed);
  Alcotest.(check int) "no-redundancy = want semantics"
    engine_run.Ocd_engine.Engine.metrics.Metrics.makespan
    run_exact.Ocd_coding.Coding.makespan

let test_redundancy_never_hurts_completion () =
  let g = graph ~seed:4 ~n:20 in
  let run ~coded =
    let rng = Prng.create ~seed:4 in
    let t =
      Ocd_coding.Coding.single_file rng ~graph:g ~required:8 ~coded ~source:0 ()
    in
    (Ocd_coding.Coding.run ~strategy:Ocd_heuristics.Random_push.strategy
       ~seed:5 t)
      .Ocd_coding.Coding.makespan
  in
  Alcotest.(check bool) "redundant no slower" true (run ~coded:16 <= run ~coded:8)

let test_completion_times_consistent () =
  let g = graph ~seed:6 ~n:15 in
  let rng = Prng.create ~seed:6 in
  let t =
    Ocd_coding.Coding.single_file rng ~graph:g ~required:4 ~coded:6 ~source:0 ()
  in
  let run =
    Ocd_coding.Coding.run ~strategy:Ocd_heuristics.Local_rarest.strategy ~seed:7 t
  in
  Alcotest.(check bool) "completed" true
    (run.Ocd_coding.Coding.outcome = Ocd_engine.Engine.Completed);
  Array.iteri
    (fun v c ->
      Alcotest.(check bool)
        (Printf.sprintf "vertex %d decoded" v)
        true (c >= 0))
    run.Ocd_coding.Coding.completion_times;
  Alcotest.(check int) "makespan = max completion"
    (Array.fold_left max 0 run.Ocd_coding.Coding.completion_times)
    run.Ocd_coding.Coding.makespan

let prop_coded_runs_valid =
  QCheck.Test.make ~name:"coded runs record valid schedules & decode everyone"
    ~count:20
    QCheck.(pair (int_range 0 1_000) (int_range 8 20))
    (fun (seed, n) ->
      let g = graph ~seed ~n in
      let rng = Prng.create ~seed in
      let t =
        Ocd_coding.Coding.single_file rng ~graph:g ~required:4 ~coded:6 ()
      in
      let run =
        Ocd_coding.Coding.run ~strategy:Ocd_heuristics.Random_push.strategy
          ~seed:(seed + 1) t
      in
      run.Ocd_coding.Coding.outcome = Ocd_engine.Engine.Completed
      && Validate.check t.Ocd_coding.Coding.instance
           run.Ocd_coding.Coding.schedule
         = Ok ()
      && Ocd_coding.Coding.all_decoded t
           (Validate.final_possessions t.Ocd_coding.Coding.instance
              run.Ocd_coding.Coding.schedule))

let prop_redundancy_monotone =
  QCheck.Test.make
    ~name:"more redundancy never increases the random heuristic's makespan"
    ~count:12
    QCheck.(int_range 0 500)
    (fun seed ->
      let g = graph ~seed ~n:18 in
      let makespan ~coded =
        let rng = Prng.create ~seed in
        let t =
          Ocd_coding.Coding.single_file rng ~graph:g ~required:6 ~coded
            ~source:0 ()
        in
        (Ocd_coding.Coding.run ~strategy:Ocd_heuristics.Random_push.strategy
           ~seed:(seed + 1) t)
          .Ocd_coding.Coding.makespan
      in
      (* allow one step of seed noise: the two runs draw different
         random choices *)
      makespan ~coded:12 <= makespan ~coded:6 + 1)

let () =
  Alcotest.run "ocd_coding"
    [
      ( "coding",
        [
          Alcotest.test_case "single file shape" `Quick test_single_file_shape;
          Alcotest.test_case "invalid params" `Quick test_single_file_invalid;
          Alcotest.test_case "decode threshold" `Quick test_decoded_threshold;
          Alcotest.test_case "no-redundancy = want semantics" `Quick
            test_run_completes_early;
          Alcotest.test_case "redundancy never hurts" `Quick
            test_redundancy_never_hurts_completion;
          Alcotest.test_case "completion times" `Quick
            test_completion_times_consistent;
          qtest prop_coded_runs_valid;
          qtest prop_redundancy_monotone;
        ] );
    ]
