(* Tests for ocd_underlay. *)

open Ocd_prelude
open Ocd_core
open Ocd_graph
open Ocd_underlay.Underlay

let qtest = QCheck_alcotest.to_alcotest

(* A tiny explicit underlay: physical path r0 - r1 - r2 (caps 2);
   overlay vertices A,B,C hosted at r0, r2, r0 respectively, overlay
   arcs A->B and C->B both routed over the same physical path. *)
let physical () =
  Digraph.of_edges ~vertex_count:3 [ (0, 1, 2); (1, 2, 2) ]

let overlay () =
  Digraph.of_arcs ~vertex_count:3
    [
      { Digraph.src = 0; dst = 1; capacity = 2 };
      { Digraph.src = 2; dst = 1; capacity = 2 };
    ]

let shared () =
  build ~physical:(physical ()) ~host_of:[| 0; 2; 0 |] ~overlay:(overlay ())

let test_build_paths () =
  let t = shared () in
  Alcotest.(check (list (pair int int))) "A->B path" [ (0, 1); (1, 2) ]
    (path t ~src:0 ~dst:1);
  Alcotest.(check (list (pair int int))) "C->B path" [ (0, 1); (1, 2) ]
    (path t ~src:2 ~dst:1)

let test_sharing_detected () =
  let t = shared () in
  let contended = sharing t in
  Alcotest.(check int) "both physical links contended" 2 (List.length contended);
  match contended with
  | ((0, 1), arcs) :: _ ->
    Alcotest.(check (list (pair int int))) "overlay arcs" [ (0, 1); (2, 1) ] arcs
  | _ -> Alcotest.fail "expected link (0,1) first"

let test_link_stress () =
  (* Overlay demands 2 + 2 = 4 through physical capacity 2 → 2.0. *)
  Alcotest.(check (float 1e-9)) "stress" 2.0 (max_link_stress (shared ()))

let test_same_host_zero_path () =
  let physical = Digraph.of_edges ~vertex_count:2 [ (0, 1, 3) ] in
  let overlay =
    Digraph.of_arcs ~vertex_count:2 [ { Digraph.src = 0; dst = 1; capacity = 1 } ]
  in
  let t = build ~physical ~host_of:[| 0; 0 |] ~overlay in
  Alcotest.(check (list (pair int int))) "colocated = no links" []
    (path t ~src:0 ~dst:1)

let test_build_unroutable () =
  let physical = Digraph.of_arcs ~vertex_count:2 [] in
  let overlay =
    Digraph.of_arcs ~vertex_count:2 [ { Digraph.src = 0; dst = 1; capacity = 1 } ]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (build ~physical ~host_of:[| 0; 1 |] ~overlay);
       false
     with Invalid_argument _ -> true)

let test_run_contention_slows () =
  (* Both overlay arcs want to push 2 tokens/step, but the shared
     physical path only carries 2 total: a schedule that would take
     ceil(4/2)=2 steps on the overlay needs more under the underlay. *)
  let t = shared () in
  let inst =
    Instance.make ~graph:(overlay ()) ~token_count:4
      ~have:[ (0, [ 0; 1 ]); (2, [ 2; 3 ]) ]
      ~want:[ (1, [ 0; 1; 2; 3 ]) ]
  in
  let strategy = Ocd_heuristics.Local_rarest.strategy in
  let overlay_run =
    Ocd_engine.Engine.completed_exn
      (Ocd_engine.Engine.run ~strategy ~seed:3 inst)
  in
  let under = run t ~strategy ~seed:3 inst in
  Alcotest.(check bool) "completes" true
    (under.outcome = Ocd_engine.Engine.Completed);
  Alcotest.(check bool) "dropped some" true (under.dropped_moves > 0);
  Alcotest.(check bool) "strictly slower than overlay-only" true
    (under.metrics.Metrics.makespan
    > overlay_run.Ocd_engine.Engine.metrics.Metrics.makespan);
  Alcotest.(check bool) "schedule valid on overlay" true
    (Validate.check_successful inst under.schedule = Ok ())

let test_run_no_contention_equals_engine () =
  (* Disjoint physical paths: the underlay never binds. *)
  let physical = Digraph.of_edges ~vertex_count:4 [ (0, 1, 9); (2, 3, 9) ] in
  let overlay =
    Digraph.of_arcs ~vertex_count:4
      [
        { Digraph.src = 0; dst = 1; capacity = 2 };
        { Digraph.src = 2; dst = 3; capacity = 2 };
      ]
  in
  let t = build ~physical ~host_of:[| 0; 1; 2; 3 |] ~overlay in
  let inst =
    Instance.make ~graph:overlay ~token_count:2
      ~have:[ (0, [ 0; 1 ]); (2, [ 0; 1 ]) ]
      ~want:[ (1, [ 0; 1 ]); (3, [ 0; 1 ]) ]
  in
  let strategy = Ocd_heuristics.Local_rarest.strategy in
  let plain = Ocd_engine.Engine.run ~strategy ~seed:5 inst in
  let under = run t ~strategy ~seed:5 inst in
  Alcotest.(check int) "no drops" 0 under.dropped_moves;
  Alcotest.(check bool) "same schedule" true
    (Schedule.steps plain.Ocd_engine.Engine.schedule = Schedule.steps under.schedule)

let test_map_onto_transit_stub () =
  let rng = Prng.create ~seed:9 in
  let overlay = Ocd_topology.Random_graph.erdos_renyi rng ~n:30 ~p:0.3 () in
  let t = map_onto_transit_stub rng ~overlay () in
  (* every overlay arc routed *)
  List.iter
    (fun { Digraph.src; dst; _ } -> ignore (path t ~src ~dst))
    (Digraph.arcs overlay);
  Alcotest.(check bool) "stress computed" true (max_link_stress t > 0.0)

let prop_underlay_runs_complete =
  QCheck.Test.make ~name:"underlay runs complete and stay overlay-valid"
    ~count:15
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let overlay = Ocd_topology.Random_graph.erdos_renyi rng ~n:20 ~p:0.35 () in
      let t = map_onto_transit_stub rng ~overlay () in
      let inst =
        (Scenario.single_file rng ~graph:overlay ~tokens:6 ()).Scenario.instance
      in
      let r =
        run t ~strategy:Ocd_heuristics.Local_rarest.strategy ~seed:(seed + 1)
          inst
      in
      r.outcome = Ocd_engine.Engine.Completed
      && Validate.check_successful inst r.schedule = Ok ())

let () =
  Alcotest.run "ocd_underlay"
    [
      ( "underlay",
        [
          Alcotest.test_case "routes paths" `Quick test_build_paths;
          Alcotest.test_case "detects sharing" `Quick test_sharing_detected;
          Alcotest.test_case "link stress" `Quick test_link_stress;
          Alcotest.test_case "colocated hosts" `Quick test_same_host_zero_path;
          Alcotest.test_case "unroutable rejected" `Quick test_build_unroutable;
          Alcotest.test_case "contention slows" `Quick test_run_contention_slows;
          Alcotest.test_case "no contention = engine" `Quick
            test_run_no_contention_equals_engine;
          Alcotest.test_case "transit-stub mapping" `Quick
            test_map_onto_transit_stub;
          qtest prop_underlay_runs_complete;
        ] );
    ]
