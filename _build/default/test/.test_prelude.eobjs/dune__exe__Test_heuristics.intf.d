test/test_heuristics.mli:
