test/test_bench.ml: Alcotest List Ocd_bench Ocd_core Ocd_engine Ocd_heuristics Ocd_prelude Ocd_topology Scenario Stats
