test/test_coding.mli:
