test/test_graph.ml: Alcotest Array Components Digraph Disjoint_trees Dominating List Mst Ocd_graph Ocd_prelude Paths Printf QCheck QCheck_alcotest Spanner Steiner Traversal
