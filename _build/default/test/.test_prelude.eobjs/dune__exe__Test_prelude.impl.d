test/test_prelude.ml: Alcotest Array Bitset Fun List Ocd_prelude Option Order Pqueue Prng QCheck QCheck_alcotest Stats String
