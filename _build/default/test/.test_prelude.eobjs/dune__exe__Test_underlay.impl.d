test/test_underlay.ml: Alcotest Digraph Instance List Metrics Ocd_core Ocd_engine Ocd_graph Ocd_heuristics Ocd_prelude Ocd_topology Ocd_underlay Prng QCheck QCheck_alcotest Scenario Schedule Validate
