test/test_topology.ml: Alcotest Fun List Ocd_graph Ocd_prelude Ocd_topology Printf Prng QCheck QCheck_alcotest Random_graph Topology Transit_stub Weights
