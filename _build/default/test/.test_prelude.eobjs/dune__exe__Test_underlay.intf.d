test/test_underlay.mli:
