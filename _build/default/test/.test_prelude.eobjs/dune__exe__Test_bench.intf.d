test/test_bench.mli:
