test/test_dynamics.mli:
