test/test_coding.ml: Alcotest Array Bitset Instance List Metrics Ocd_coding Ocd_core Ocd_engine Ocd_heuristics Ocd_prelude Ocd_topology Printf Prng QCheck QCheck_alcotest Validate
